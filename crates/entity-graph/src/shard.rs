//! Sharded CSR graph storage: one logical [`EntityGraph`] partitioned across
//! N per-shard indexes for million-entity scale.
//!
//! The monolithic graph keeps every adjacency index in single flat arrays —
//! ideal for cache-friendly scans, but one allocation must hold the whole
//! payload, builds are single-threaded over one array set, and delta splices
//! rewrite the full index even when an edit touches one entity. A
//! [`ShardedGraph`] keeps the logical graph (names, types, edge list, delta
//! validation) intact and re-homes the **hot neighbor storage**:
//!
//! * a [`ShardingStrategy`] assigns every entity to one of N shards — by its
//!   (first) entity type, so same-type entities scan together, or by a
//!   deterministic hash of its id, for uniform balance;
//! * a **shard directory** maps `EntityId → (shard, local id)` in one flat
//!   `Vec` lookup;
//! * each [`GraphShard`] stores its members' neighbor segments
//!   varint/delta-encoded ([`crate::encoding`]) plus a per-type member index,
//!   so per-shard scans need no directory chasing;
//! * [`MemoryReport`] accounts the bytes of every shard and the total,
//!   against the unsharded index footprint.
//!
//! Shards are fully independent after planning: builds and delta re-splices
//! parallelize per shard (see `from_graph_with` / `apply_delta_with`, which
//! `preview-core` drives on its fork-join pool), and all derived results —
//! decoded neighbor sets, entropy scores, delta outcomes — are **bitwise
//! identical** to the unsharded path, because the encoding is canonical and
//! shard membership is deterministic.

use std::fmt;
use std::sync::Arc;

use crate::csr::Csr;
use crate::delta::{DeltaOp, DeltaSummary, GraphDelta};
use crate::encoding::{EncodedNeighbors, EncodedNeighborsBuilder};
use crate::error::Result;
use crate::graph::{Direction, EntityGraph};
use crate::id::{EntityId, RelTypeId, TypeId};

/// How a [`ShardedGraph`] assigns entities to shards.
///
/// Both strategies are deterministic functions of stable identifiers (type
/// ids and entity construction order), so the same graph always shards the
/// same way — a requirement for the byte-identical delta contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingStrategy {
    /// Shard by the entity's first (lowest) entity type id, modulo the shard
    /// count. Entities of one type land in one shard, so type-driven scans
    /// (entropy scoring walks `T.τ`) touch few shards; shard sizes follow the
    /// type-size distribution.
    ByEntityType {
        /// Number of shards (clamped to ≥ 1).
        shards: usize,
    },
    /// Shard by a multiplicative hash of the raw entity id, modulo the shard
    /// count. Near-uniform shard sizes regardless of the type distribution.
    ByIdHash {
        /// Number of shards (clamped to ≥ 1).
        shards: usize,
    },
}

impl ShardingStrategy {
    /// The number of shards this strategy produces (≥ 1).
    pub fn shard_count(&self) -> usize {
        let shards = match *self {
            ShardingStrategy::ByEntityType { shards } | ShardingStrategy::ByIdHash { shards } => {
                shards
            }
        };
        shards.clamp(1, u32::MAX as usize)
    }

    /// The shard the given entity of `graph` belongs to.
    fn shard_of(&self, graph: &EntityGraph, entity: EntityId) -> u32 {
        let count = self.shard_count() as u32;
        match *self {
            ShardingStrategy::ByEntityType { .. } => {
                // Entity type sets are sorted; the first entry is the lowest
                // type id. Type ids are append-only across deltas and an
                // existing entity's types never change, so the assignment is
                // stable across versions.
                let ty = graph.entity(entity).types.first().map_or(0, |ty| ty.raw());
                ty % count
            }
            ShardingStrategy::ByIdHash { .. } => {
                // Fibonacci multiplicative hash: cheap, deterministic and
                // spreads consecutive construction-order ids uniformly.
                entity.raw().wrapping_mul(0x9e37_79b9) % count
            }
        }
    }
}

/// One entry of the shard directory: where an entity lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoc {
    /// Index of the owning shard.
    pub shard: u32,
    /// The entity's local index within that shard.
    pub local: u32,
}

/// Computes the shard directory and per-shard member lists (ascending global
/// ids) for a graph under a strategy.
fn plan(graph: &EntityGraph, strategy: ShardingStrategy) -> (Vec<ShardLoc>, Vec<Vec<EntityId>>) {
    let count = strategy.shard_count();
    let mut members: Vec<Vec<EntityId>> = vec![Vec::new(); count];
    let mut directory = Vec::with_capacity(graph.entity_count());
    for index in 0..graph.entity_count() {
        let id = EntityId::from_usize(index);
        let shard = strategy.shard_of(graph, id);
        let list = &mut members[shard as usize];
        directory.push(ShardLoc {
            shard,
            local: u32::try_from(list.len()).expect("shard members fit in u32"),
        });
        list.push(id);
    }
    (directory, members)
}

/// One CSR shard: the neighbor storage of its member entities, with
/// varint/delta-encoded payloads and a per-type member index.
///
/// Neighbor ids are **global** [`EntityId`]s (edges cross shards freely); the
/// shard only owns the storage of its members' segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphShard {
    /// The shard's member entities, ascending by global id; index = local id.
    globals: Vec<EntityId>,
    /// Local member ids grouped by (global) entity type.
    by_type: Csr<u32>,
    /// Encoded outgoing neighbor segments, indexed by local id.
    out: EncodedNeighbors,
    /// Encoded incoming neighbor segments, indexed by local id.
    inc: EncodedNeighbors,
}

impl GraphShard {
    /// Builds one shard of `graph` from its member list (ascending global
    /// ids), encoding every member's neighbor segments.
    pub fn build(graph: &EntityGraph, members: &[EntityId]) -> Self {
        Self::build_inner(graph, members, None)
    }

    /// Shared construction: encode every member fresh, or block-copy the
    /// encoded segments of provably-untouched members from a previous
    /// version (`fast` = old sharded graph, touched flags, old entity count).
    fn build_inner(
        graph: &EntityGraph,
        members: &[EntityId],
        fast: Option<(&ShardedGraph, &[bool], usize)>,
    ) -> Self {
        let globals = members.to_vec();
        let type_pairs: Vec<(usize, u32)> = globals
            .iter()
            .enumerate()
            .flat_map(|(local, &global)| {
                graph
                    .entity(global)
                    .types
                    .iter()
                    .map(move |ty| (ty.index(), local as u32))
            })
            .collect();
        let by_type = Csr::from_pairs(graph.type_count(), &type_pairs);
        let encode = |direction: Direction| {
            let mut builder = EncodedNeighborsBuilder::new(globals.len());
            for &global in &globals {
                let copied = fast.is_some_and(|(old, touched, old_count)| {
                    let index = global.index();
                    if index >= old_count || touched[index] {
                        return false;
                    }
                    let loc = old.directory[index];
                    let source = match direction {
                        Direction::Outgoing => &old.shards[loc.shard as usize].out,
                        Direction::Incoming => &old.shards[loc.shard as usize].inc,
                    };
                    builder.copy_entity_verbatim(source, loc.local as usize);
                    true
                });
                if !copied {
                    for (rel, ids) in graph.neighbor_segments(global, direction) {
                        builder.push_segment(rel, ids);
                    }
                    builder.finish_entity();
                }
            }
            builder.build()
        };
        let out = encode(Direction::Outgoing);
        let inc = encode(Direction::Incoming);
        Self {
            globals,
            by_type,
            out,
            inc,
        }
    }

    /// Number of member entities.
    #[inline]
    pub fn entity_count(&self) -> usize {
        self.globals.len()
    }

    /// The member entities, ascending by global id; position = local id.
    #[inline]
    pub fn globals(&self) -> &[EntityId] {
        &self.globals
    }

    /// The global id of a local member index.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    #[inline]
    pub fn global_of(&self, local: usize) -> EntityId {
        self.globals[local]
    }

    /// The shard's member entities bearing `ty`, as local indexes.
    #[inline]
    pub fn locals_of_type(&self, ty: TypeId) -> &[u32] {
        self.by_type.slice(ty.index())
    }

    /// The canonical encoded bytes of a member's neighbor set through `rel`
    /// in the given direction, or `None` if empty (see
    /// [`EncodedNeighbors::encoded`]).
    #[inline]
    pub fn encoded(&self, local: usize, rel: RelTypeId, direction: Direction) -> Option<&[u8]> {
        match direction {
            Direction::Outgoing => self.out.encoded(local, rel),
            Direction::Incoming => self.inc.encoded(local, rel),
        }
    }

    /// Decodes a member's neighbor set into `out` (cleared first); returns
    /// `true` if the member has neighbors through `rel`.
    pub fn decode_neighbors(
        &self,
        local: usize,
        rel: RelTypeId,
        direction: Direction,
        out: &mut Vec<EntityId>,
    ) -> bool {
        match direction {
            Direction::Outgoing => self.out.decode_neighbors(local, rel, out),
            Direction::Incoming => self.inc.decode_neighbors(local, rel, out),
        }
    }

    /// This shard's memory accounting.
    pub fn memory(&self, shard: usize) -> ShardMemoryReport {
        let encoded_payload_bytes = (self.out.payload_bytes() + self.inc.payload_bytes()) as u64;
        let total_bytes = self.out.heap_bytes()
            + self.inc.heap_bytes()
            + (self.globals.len() * std::mem::size_of::<EntityId>()) as u64
            + self.by_type.heap_bytes();
        ShardMemoryReport {
            shard,
            entities: self.globals.len(),
            segments: self.out.segment_count() + self.inc.segment_count(),
            encoded_payload_bytes,
            directory_bytes: total_bytes - encoded_payload_bytes,
            total_bytes,
        }
    }
}

/// Memory accounting of one [`GraphShard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMemoryReport {
    /// Shard index.
    pub shard: usize,
    /// Member entity count.
    pub entities: usize,
    /// Stored (entity, rel) segments, both directions combined.
    pub segments: usize,
    /// Varint/delta-encoded neighbor payload bytes, both directions.
    pub encoded_payload_bytes: u64,
    /// Bytes of segment directories, the member list and the per-type index.
    pub directory_bytes: u64,
    /// Total shard bytes (`encoded_payload_bytes + directory_bytes`).
    pub total_bytes: u64,
}

/// Memory accounting of a whole [`ShardedGraph`] — per shard and total,
/// against the unsharded index it replaces.
///
/// Read it as: the sharded neighbor storage costs
/// [`sharded_total_bytes`](Self::sharded_total_bytes) (payload plus all
/// directories, including the global entity→shard directory), versus
/// [`unsharded_total_bytes`](Self::unsharded_total_bytes) for the monolithic
/// `RelGroupedNeighbors` pair; [`payload_compression`](Self::payload_compression)
/// is the raw-`u32`-payload to encoded-payload ratio (> 1 means the varint
/// encoding is winning).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Number of shards.
    pub shard_count: usize,
    /// Entities in the logical graph.
    pub entities: usize,
    /// Edges in the logical graph.
    pub edges: usize,
    /// Per-shard accounting, by shard index.
    pub shards: Vec<ShardMemoryReport>,
    /// Bytes of the global `EntityId → (shard, local)` directory.
    pub shard_directory_bytes: u64,
    /// Total encoded neighbor payload bytes over all shards.
    pub encoded_payload_bytes: u64,
    /// Total sharded storage: all shards plus the shard directory.
    pub sharded_total_bytes: u64,
    /// Raw `u32` neighbor payload bytes of the unsharded index (both
    /// directions).
    pub unsharded_payload_bytes: u64,
    /// Full heap bytes of the unsharded neighbor indexes (payload plus
    /// segment directories, both directions).
    pub unsharded_total_bytes: u64,
}

impl MemoryReport {
    /// Raw-payload to encoded-payload compression ratio (> 1 = smaller
    /// encoded). `1.0` for empty graphs.
    pub fn payload_compression(&self) -> f64 {
        if self.encoded_payload_bytes == 0 {
            1.0
        } else {
            self.unsharded_payload_bytes as f64 / self.encoded_payload_bytes as f64
        }
    }

    /// Whether the total sharded storage fits a byte budget.
    pub fn fits_budget(&self, budget_bytes: u64) -> bool {
        self.sharded_total_bytes <= budget_bytes
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sharded storage: {} entities, {} edges across {} shard(s)",
            self.entities, self.edges, self.shard_count
        )?;
        for shard in &self.shards {
            writeln!(
                f,
                "  shard {:>3}: {:>9} entities {:>9} segments {:>12} payload B {:>12} total B",
                shard.shard,
                shard.entities,
                shard.segments,
                shard.encoded_payload_bytes,
                shard.total_bytes
            )?;
        }
        writeln!(
            f,
            "  directory: {} B  encoded payload: {} B  sharded total: {} B",
            self.shard_directory_bytes, self.encoded_payload_bytes, self.sharded_total_bytes
        )?;
        write!(
            f,
            "  unsharded payload: {} B  unsharded total: {} B  payload compression: {:.2}x",
            self.unsharded_payload_bytes,
            self.unsharded_total_bytes,
            self.payload_compression()
        )
    }
}

/// The outcome of [`ShardedGraph::apply_delta`]: the next sharded version
/// plus the same [`DeltaSummary`] the unsharded apply produces.
#[derive(Debug, Clone)]
pub struct AppliedShardedDelta {
    /// The new sharded graph.
    pub sharded: ShardedGraph,
    /// What changed relative to the input version.
    pub summary: DeltaSummary,
    /// Whether the identity splice fast path applied (no pre-existing
    /// entity removed: untouched shards were block-copied). `false` means
    /// the delta forced a full reshard.
    pub spliced: bool,
    /// Shards whose storage had to be rebuilt rather than block-copied:
    /// shards holding a delta-touched or newly added entity on the splice
    /// path, or every shard on a full reshard.
    pub touched_shards: usize,
}

/// A logical [`EntityGraph`] partitioned across N [`GraphShard`]s (see the
/// [module docs](self)).
///
/// The inner graph stays the source of truth for names, types, the edge list,
/// schema derivation and delta validation; the shards replace the monolithic
/// neighbor indexes for storage-bound workloads. Cloning is cheap on the
/// logical side (`Arc`) and deep on shard storage.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    graph: Arc<EntityGraph>,
    strategy: ShardingStrategy,
    directory: Vec<ShardLoc>,
    shards: Vec<GraphShard>,
}

impl ShardedGraph {
    /// Shards `graph` under `strategy`, building every shard sequentially.
    ///
    /// Use [`from_graph_with`](Self::from_graph_with) (as `preview-core`'s
    /// `build_sharded` does) to build shards in parallel.
    pub fn from_graph(graph: Arc<EntityGraph>, strategy: ShardingStrategy) -> Self {
        Self::from_graph_with(graph, strategy, |count, build| {
            (0..count).map(build).collect()
        })
    }

    /// Shards `graph` under `strategy`, delegating per-shard construction to
    /// `run`: it receives the shard count and a `Sync` per-shard build
    /// function, and must return the built shards **in shard order**
    /// (`(0..count).map(build).collect()` is the sequential reference).
    ///
    /// Shards are independent, so `run` may invoke the build function for
    /// different indexes from different threads; the result is identical to
    /// the sequential path regardless of schedule. This inversion keeps the
    /// storage crate free of any threading runtime while letting
    /// `preview-core` drive the build on its fork-join pool.
    ///
    /// # Panics
    ///
    /// Panics if `run` returns a different number of shards.
    pub fn from_graph_with<R>(graph: Arc<EntityGraph>, strategy: ShardingStrategy, run: R) -> Self
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> GraphShard + Sync)) -> Vec<GraphShard>,
    {
        let mut span = preview_obs::span!(preview_obs::Stage::ShardedBuild);
        let (directory, members) = plan(&graph, strategy);
        span.set_attr(members.len() as u64);
        let build = |shard: usize| GraphShard::build(&graph, &members[shard]);
        let shards = run(members.len(), &build);
        assert_eq!(
            shards.len(),
            members.len(),
            "shard runner must return one shard per plan entry"
        );
        Self {
            graph,
            strategy,
            directory,
            shards,
        }
    }

    /// The logical graph this sharded view stores.
    pub fn graph(&self) -> &Arc<EntityGraph> {
        &self.graph
    }

    /// The strategy entities were assigned with.
    pub fn strategy(&self) -> ShardingStrategy {
        self.strategy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, by shard index.
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// The shard directory: entry `i` locates entity `i`.
    pub fn directory(&self) -> &[ShardLoc] {
        &self.directory
    }

    /// Where an entity lives.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range.
    #[inline]
    pub fn locate(&self, entity: EntityId) -> ShardLoc {
        self.directory[entity.index()]
    }

    /// Decodes an entity's neighbor set through `rel` into `out` (cleared
    /// first) by routing through the shard directory; returns `true` if
    /// non-empty. The decoded ids equal
    /// [`EntityGraph::neighbors_via`] on the logical graph, element for
    /// element.
    pub fn neighbors_via_decoded(
        &self,
        entity: EntityId,
        rel: RelTypeId,
        direction: Direction,
        out: &mut Vec<EntityId>,
    ) -> bool {
        let loc = self.locate(entity);
        self.shards[loc.shard as usize].decode_neighbors(loc.local as usize, rel, direction, out)
    }

    /// Applies a batch of edits, producing the next sharded version —
    /// validation and the logical splice are exactly
    /// [`EntityGraph::apply_delta`]; shard storage is then re-spliced
    /// per shard, block-copying the encoded segments of every entity the
    /// delta provably did not touch.
    ///
    /// The result equals [`from_graph`](Self::from_graph) on the spliced
    /// logical graph, field for field (`tests/shard_props.rs` enforces this
    /// under random update streams). Use
    /// [`apply_delta_with`](Self::apply_delta_with) to re-splice shards in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Exactly those of [`EntityGraph::apply_delta`]; a failed batch leaves
    /// this version untouched.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<AppliedShardedDelta> {
        self.apply_delta_with(delta, |count, build| (0..count).map(build).collect())
    }

    /// [`apply_delta`](Self::apply_delta) with per-shard re-splicing
    /// delegated to `run` (same contract as
    /// [`from_graph_with`](Self::from_graph_with)).
    ///
    /// # Errors
    ///
    /// Exactly those of [`EntityGraph::apply_delta`].
    ///
    /// # Panics
    ///
    /// Panics if `run` returns a different number of shards.
    pub fn apply_delta_with<R>(&self, delta: &GraphDelta, run: R) -> Result<AppliedShardedDelta>
    where
        R: FnOnce(usize, &(dyn Fn(usize) -> GraphShard + Sync)) -> Vec<GraphShard>,
    {
        let applied = self.graph.apply_delta(delta)?;
        let summary = applied.summary;
        let new_graph = Arc::new(applied.graph);
        let (directory, members) = plan(&new_graph, self.strategy);
        let old_entity_count = self.graph.entity_count();
        // Fast path: when no pre-existing entity was removed, entity ids are
        // stable, so every untouched survivor's neighbor sets — and therefore
        // its canonical encoded bytes — are unchanged and can be block-copied
        // from the previous version. (The unsharded splice proves the
        // underlying neighbor slices byte-identical under the same
        // condition.)
        let identity = summary.entities_removed == 0;
        let touched = if identity {
            touched_entities(&new_graph, delta)
        } else {
            Vec::new()
        };
        // A shard is "touched" if its storage cannot be block-copied
        // wholesale: it gained a new entity or holds a delta-touched one.
        // On a full reshard every shard rebuilds.
        let touched_shards = if identity {
            members
                .iter()
                .filter(|shard_members| {
                    shard_members
                        .iter()
                        .any(|e| e.index() >= old_entity_count || touched[e.index()])
                })
                .count()
        } else {
            members.len()
        };
        let mut span = preview_obs::span!(preview_obs::Stage::ShardSplice);
        span.set_attr(touched_shards as u64);
        let build = |shard: usize| -> GraphShard {
            if identity {
                GraphShard::build_inner(
                    &new_graph,
                    &members[shard],
                    Some((self, &touched, old_entity_count)),
                )
            } else {
                GraphShard::build(&new_graph, &members[shard])
            }
        };
        let shards = run(members.len(), &build);
        assert_eq!(
            shards.len(),
            members.len(),
            "shard runner must return one shard per plan entry"
        );
        Ok(AppliedShardedDelta {
            sharded: ShardedGraph {
                graph: new_graph,
                strategy: self.strategy,
                directory,
                shards,
            },
            summary,
            spliced: identity,
            touched_shards,
        })
    }

    /// Memory accounting per shard and total (see [`MemoryReport`]).
    pub fn memory_report(&self) -> MemoryReport {
        let shards: Vec<ShardMemoryReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| shard.memory(index))
            .collect();
        let shard_directory_bytes = (self.directory.len() * std::mem::size_of::<ShardLoc>()) as u64;
        let encoded_payload_bytes = shards.iter().map(|s| s.encoded_payload_bytes).sum();
        let sharded_total_bytes =
            shards.iter().map(|s| s.total_bytes).sum::<u64>() + shard_directory_bytes;
        let (unsharded_payload_bytes, unsharded_total_bytes) = self.graph.neighbor_index_bytes();
        MemoryReport {
            shard_count: self.shards.len(),
            entities: self.graph.entity_count(),
            edges: self.graph.edge_count(),
            shards,
            shard_directory_bytes,
            encoded_payload_bytes,
            sharded_total_bytes,
            unsharded_payload_bytes,
            unsharded_total_bytes,
        }
    }
}

/// Structural equality over the full sharded storage **and** the logical
/// graph — the equality the sharded delta contract is stated in: a spliced
/// sharded version equals a from-scratch [`ShardedGraph::from_graph`] of the
/// spliced logical graph.
impl PartialEq for ShardedGraph {
    fn eq(&self, other: &Self) -> bool {
        self.strategy == other.strategy
            && self.directory == other.directory
            && self.shards == other.shards
            && *self.graph == *other.graph
    }
}

/// Conservative over-approximation of the **new-graph** entities whose
/// neighbor sets a delta may have changed, valid only when the delta removed
/// no pre-existing entity (ids and names of survivors are then stable).
///
/// Every add-edge/remove-edge op marks both endpoint names as resolved in
/// the new graph. This covers all actually-touched survivors: endpoints of
/// removed old edges are pre-existing entities whose names still resolve to
/// the same ids, and endpoints of surviving added edges resolve to their
/// live entities. A name that no longer resolves belonged to an entity
/// added and removed within the batch — it has no storage to preserve. A
/// name rebound within the batch can only over-mark (marking an entity
/// touched merely re-encodes it, which is always sound).
fn touched_entities(new_graph: &EntityGraph, delta: &GraphDelta) -> Vec<bool> {
    let mut touched = vec![false; new_graph.entity_count()];
    let mut mark = |name: &str| {
        if let Some(id) = new_graph.entity_by_name(name) {
            touched[id.index()] = true;
        }
    };
    for op in delta.ops() {
        match op {
            DeltaOp::AddEdge { src, dst, .. } | DeltaOp::RemoveEdge { src, dst, .. } => {
                mark(src);
                mark(dst);
            }
            DeltaOp::AddEntity { .. } | DeltaOp::RemoveEntity { .. } => {}
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn strategies() -> [ShardingStrategy; 4] {
        [
            ShardingStrategy::ByEntityType { shards: 1 },
            ShardingStrategy::ByEntityType { shards: 3 },
            ShardingStrategy::ByIdHash { shards: 4 },
            ShardingStrategy::ByIdHash { shards: 64 },
        ]
    }

    /// Every neighbor set decoded from the shards equals the logical graph's
    /// borrowed slice, for every entity, rel and direction.
    fn assert_matches_graph(sharded: &ShardedGraph) {
        let graph = sharded.graph();
        let mut decoded = Vec::new();
        for (id, _) in graph.entities() {
            for (rel, _) in graph.rel_types() {
                for direction in [Direction::Outgoing, Direction::Incoming] {
                    let expected = graph.neighbors_via(id, rel, direction);
                    let found = sharded.neighbors_via_decoded(id, rel, direction, &mut decoded);
                    assert_eq!(found, !expected.is_empty());
                    assert_eq!(decoded, expected, "entity {id:?} rel {rel:?} {direction:?}");
                }
            }
        }
        // The directory and per-type indexes partition the entity set.
        let total: usize = sharded.shards().iter().map(GraphShard::entity_count).sum();
        assert_eq!(total, graph.entity_count());
        for (index, shard) in sharded.shards().iter().enumerate() {
            for (local, &global) in shard.globals().iter().enumerate() {
                assert_eq!(
                    sharded.locate(global),
                    ShardLoc {
                        shard: index as u32,
                        local: local as u32
                    }
                );
                assert_eq!(shard.global_of(local), global);
            }
            assert!(shard.globals().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sharded_figure1_matches_unsharded_under_all_strategies() {
        let graph = Arc::new(fixtures::figure1_graph());
        for strategy in strategies() {
            let sharded = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
            assert_eq!(sharded.shard_count(), strategy.shard_count());
            assert_matches_graph(&sharded);
        }
    }

    #[test]
    fn locals_of_type_cover_entities_of_type() {
        let graph = Arc::new(fixtures::figure1_graph());
        let sharded =
            ShardedGraph::from_graph(Arc::clone(&graph), ShardingStrategy::ByIdHash { shards: 3 });
        for (ty, _) in graph.types() {
            let mut via_shards: Vec<EntityId> = sharded
                .shards()
                .iter()
                .flat_map(|shard| {
                    shard
                        .locals_of_type(ty)
                        .iter()
                        .map(|&local| shard.global_of(local as usize))
                })
                .collect();
            via_shards.sort_unstable();
            let mut expected = graph.entities_of_type(ty).to_vec();
            expected.sort_unstable();
            assert_eq!(via_shards, expected);
        }
    }

    #[test]
    fn from_graph_with_runner_order_is_respected() {
        let graph = Arc::new(fixtures::figure1_graph());
        let strategy = ShardingStrategy::ByIdHash { shards: 5 };
        let sequential = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
        // A runner that builds shards in reverse still returns them in order.
        let reversed = ShardedGraph::from_graph_with(Arc::clone(&graph), strategy, |n, build| {
            let mut shards: Vec<(usize, GraphShard)> =
                (0..n).rev().map(|i| (i, build(i))).collect();
            shards.sort_by_key(|(i, _)| *i);
            shards.into_iter().map(|(_, s)| s).collect()
        });
        assert_eq!(sequential, reversed);
    }

    #[test]
    fn apply_delta_equals_resharded_rebuild() {
        let graph = Arc::new(fixtures::figure1_graph());
        let mut delta = GraphDelta::new();
        delta
            .add_entity("Bad Boys", &["FILM"])
            .add_edge("Will Smith", "Actor", "Bad Boys", "FILM ACTOR", "FILM")
            .remove_edge(
                "Men in Black",
                "Genres",
                "Action Film",
                "FILM",
                "FILM GENRE",
            );
        for strategy in strategies() {
            let sharded = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
            let applied = sharded.apply_delta(&delta).unwrap();
            let reference = ShardedGraph::from_graph(Arc::clone(applied.sharded.graph()), strategy);
            assert_eq!(applied.sharded, reference, "{strategy:?}");
            assert_matches_graph(&applied.sharded);
            assert_eq!(applied.summary.entities_added, 1);
        }
    }

    #[test]
    fn apply_delta_with_removals_reshards_correctly() {
        let graph = Arc::new(fixtures::figure1_graph());
        let mut delta = GraphDelta::new();
        delta
            .remove_edge(
                "Men in Black",
                "Genres",
                "Action Film",
                "FILM",
                "FILM GENRE",
            )
            .remove_edge(
                "Men in Black II",
                "Genres",
                "Action Film",
                "FILM",
                "FILM GENRE",
            )
            .remove_edge("I, Robot", "Genres", "Action Film", "FILM", "FILM GENRE")
            .remove_entity("Action Film");
        for strategy in strategies() {
            let sharded = ShardedGraph::from_graph(Arc::clone(&graph), strategy);
            let applied = sharded.apply_delta(&delta).unwrap();
            assert_eq!(applied.summary.entities_removed, 1);
            let reference = ShardedGraph::from_graph(Arc::clone(applied.sharded.graph()), strategy);
            assert_eq!(applied.sharded, reference, "{strategy:?}");
            assert_matches_graph(&applied.sharded);
        }
    }

    #[test]
    fn failed_delta_leaves_sharded_version_untouched() {
        let graph = Arc::new(fixtures::figure1_graph());
        let sharded =
            ShardedGraph::from_graph(Arc::clone(&graph), ShardingStrategy::ByIdHash { shards: 2 });
        let mut delta = GraphDelta::new();
        delta.remove_entity("Men in Black"); // still referenced by edges
        assert!(sharded.apply_delta(&delta).is_err());
        assert_matches_graph(&sharded);
    }

    #[test]
    fn memory_report_accounts_all_shards() {
        let graph = Arc::new(fixtures::figure1_graph());
        let sharded =
            ShardedGraph::from_graph(Arc::clone(&graph), ShardingStrategy::ByIdHash { shards: 3 });
        let report = sharded.memory_report();
        assert_eq!(report.shard_count, 3);
        assert_eq!(report.entities, graph.entity_count());
        assert_eq!(report.edges, graph.edge_count());
        assert_eq!(report.shards.len(), 3);
        assert_eq!(
            report.encoded_payload_bytes,
            report
                .shards
                .iter()
                .map(|s| s.encoded_payload_bytes)
                .sum::<u64>()
        );
        assert!(report.sharded_total_bytes > report.encoded_payload_bytes);
        assert!(report.unsharded_total_bytes >= report.unsharded_payload_bytes);
        assert!(report.payload_compression() > 0.0);
        assert!(report.fits_budget(u64::MAX));
        assert!(!report.fits_budget(0));
        let rendered = report.to_string();
        assert!(rendered.contains("shard"));
        assert!(rendered.contains("compression"));
    }

    #[test]
    fn empty_graph_shards_cleanly() {
        let graph = Arc::new(crate::builder::EntityGraphBuilder::new().build());
        let sharded = ShardedGraph::from_graph(
            Arc::clone(&graph),
            ShardingStrategy::ByEntityType { shards: 4 },
        );
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.memory_report().encoded_payload_bytes, 0);
        assert!((sharded.memory_report().payload_compression() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn strategy_shard_count_clamps_to_one() {
        assert_eq!(ShardingStrategy::ByIdHash { shards: 0 }.shard_count(), 1);
        assert_eq!(
            ShardingStrategy::ByEntityType { shards: 0 }.shard_count(),
            1
        );
        assert_eq!(ShardingStrategy::ByIdHash { shards: 7 }.shard_count(), 7);
    }
}
