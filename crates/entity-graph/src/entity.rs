//! Plain data records stored by the entity graph: entities, edges and
//! relationship types.

use serde::{Deserialize, Serialize};

use crate::id::{EntityId, RelTypeId, TypeId};

/// A vertex of the entity graph: a named entity belonging to one or more
/// entity types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Display name of the entity. Names are assumed distinct within a graph
    /// (the paper distinguishes entities by URI; the builder enforces name
    /// uniqueness and treats the name as the identifier surface form).
    pub name: String,
    /// Entity types this entity belongs to, sorted ascending and de-duplicated.
    pub types: Vec<TypeId>,
}

impl Entity {
    /// Whether the entity carries the given type.
    #[inline]
    pub fn has_type(&self, ty: TypeId) -> bool {
        self.types.binary_search(&ty).is_ok()
    }
}

/// A directed relationship instance `e(v, v')` of a given relationship type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source entity (`v`).
    pub src: EntityId,
    /// Destination entity (`v'`).
    pub dst: EntityId,
    /// The relationship type this edge belongs to.
    pub rel: RelTypeId,
}

/// A relationship type `γ(τ, τ')`: a directed schema-level edge from entity
/// type `τ` to entity type `τ'` with a surface name.
///
/// Two relationship types may share the same surface name (e.g. two
/// `Award Winners` relationship types from different entity types); they are
/// distinguished by their [`RelTypeId`] and their endpoint types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelType {
    /// Surface name shown to users (e.g. `Director`).
    pub name: String,
    /// Source entity type `τ`.
    pub src_type: TypeId,
    /// Destination entity type `τ'`.
    pub dst_type: TypeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_has_type_uses_sorted_lookup() {
        let e = Entity {
            name: "Will Smith".into(),
            types: vec![TypeId::new(1), TypeId::new(3), TypeId::new(5)],
        };
        assert!(e.has_type(TypeId::new(3)));
        assert!(!e.has_type(TypeId::new(2)));
    }

    #[test]
    fn edge_is_copy() {
        let e = Edge {
            src: EntityId::new(0),
            dst: EntityId::new(1),
            rel: RelTypeId::new(2),
        };
        let f = e;
        assert_eq!(e, f);
    }
}
