//! Reference graphs used throughout the workspace's tests, examples and
//! documentation.
//!
//! [`figure1_graph`] reconstructs the running example of the paper (Fig. 1, a
//! tiny excerpt of a film entity graph) with edge multiplicities chosen to
//! match every worked number in the paper:
//!
//! * `Scov(FILM) = 4` (Sec. 3.2),
//! * edge weights `w(FILM, FILM GENRE) = 5`, `w(FILM, FILM ACTOR) = 6`,
//!   `w(FILM, FILM DIRECTOR) = 4`, `w(FILM, FILM PRODUCER) = 3`, giving the
//!   transition probabilities `M(FILM, FILM GENRE) = 0.28` and
//!   `M(FILM, FILM PRODUCER) = 0.17` (Sec. 3.2),
//! * `Scov^FILM(Director) = 4`, `Scov^FILM(Genres) = 5`,
//!   `Sent^FILM(Director) ≈ 0.45`, `Sent^FILM(Genres) ≈ 0.28` (Sec. 3.3),
//! * the optimal concise/diverse previews of Sec. 4's running example.

use crate::builder::EntityGraphBuilder;
use crate::graph::EntityGraph;

/// Entity-type names used by [`figure1_graph`], in insertion order.
pub mod types {
    /// Films.
    pub const FILM: &str = "FILM";
    /// Film actors.
    pub const FILM_ACTOR: &str = "FILM ACTOR";
    /// Film directors.
    pub const FILM_DIRECTOR: &str = "FILM DIRECTOR";
    /// Film producers.
    pub const FILM_PRODUCER: &str = "FILM PRODUCER";
    /// Film genres.
    pub const FILM_GENRE: &str = "FILM GENRE";
    /// Awards.
    pub const AWARD: &str = "AWARD";
}

/// Builds the paper's Fig. 1 entity graph.
pub fn figure1_graph() -> EntityGraph {
    let mut b = EntityGraphBuilder::new();

    let film = b.entity_type(types::FILM);
    let actor = b.entity_type(types::FILM_ACTOR);
    let director = b.entity_type(types::FILM_DIRECTOR);
    let producer = b.entity_type(types::FILM_PRODUCER);
    let genre = b.entity_type(types::FILM_GENRE);
    let award = b.entity_type(types::AWARD);

    let rel_actor = b.relationship_type("Actor", actor, film);
    let rel_director = b.relationship_type("Director", director, film);
    let rel_genres = b.relationship_type("Genres", film, genre);
    let rel_producer = b.relationship_type("Producer", producer, film);
    let rel_exec_producer = b.relationship_type("Executive Producer", producer, film);
    let rel_actor_award = b.relationship_type("Award Winners", actor, award);
    let rel_director_award = b.relationship_type("Award Winners", director, award);

    // Films.
    let mib = b.entity("Men in Black", &[film]);
    let mib2 = b.entity("Men in Black II", &[film]);
    let hancock = b.entity("Hancock", &[film]);
    let irobot = b.entity("I, Robot", &[film]);

    // People. Will Smith is both an actor and a producer.
    let smith = b.entity("Will Smith", &[actor, producer]);
    let jones = b.entity("Tommy Lee Jones", &[actor]);
    let sonnenfeld = b.entity("Barry Sonnenfeld", &[director]);
    let berg = b.entity("Peter Berg", &[director]);
    let proyas = b.entity("Alex Proyas", &[director]);

    // Genres and awards.
    let action = b.entity("Action Film", &[genre]);
    let scifi = b.entity("Science Fiction", &[genre]);
    let saturn = b.entity("Saturn Award", &[award]);
    let academy = b.entity("Academy Award", &[award]);
    let razzie = b.entity("Razzie Award", &[award]);

    // Actor edges (6): w(FILM, FILM ACTOR) = 6.
    for (who, what) in [
        (smith, mib),
        (smith, mib2),
        (smith, hancock),
        (smith, irobot),
        (jones, mib),
        (jones, mib2),
    ] {
        b.edge(who, rel_actor, what).expect("actor edge");
    }

    // Director edges (4): w(FILM, FILM DIRECTOR) = 4.
    for (who, what) in [
        (sonnenfeld, mib),
        (sonnenfeld, mib2),
        (berg, hancock),
        (proyas, irobot),
    ] {
        b.edge(who, rel_director, what).expect("director edge");
    }

    // Genres edges (5): w(FILM, FILM GENRE) = 5. Hancock has no genre.
    for (what, g) in [
        (mib, action),
        (mib, scifi),
        (mib2, action),
        (mib2, scifi),
        (irobot, action),
    ] {
        b.edge(what, rel_genres, g).expect("genre edge");
    }

    // Producer (2) + Executive Producer (1): w(FILM, FILM PRODUCER) = 3.
    b.edge(smith, rel_producer, hancock).expect("producer edge");
    b.edge(smith, rel_producer, mib2).expect("producer edge");
    b.edge(smith, rel_exec_producer, irobot)
        .expect("executive producer edge");

    // Award Winners from actors (2) and directors (1).
    b.edge(smith, rel_actor_award, saturn).expect("award edge");
    b.edge(jones, rel_actor_award, academy).expect("award edge");
    b.edge(sonnenfeld, rel_director_award, razzie)
        .expect("award edge");

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_sizes() {
        let g = figure1_graph();
        assert_eq!(g.entity_count(), 14);
        assert_eq!(g.edge_count(), 21);
        assert_eq!(g.type_count(), 6);
        assert_eq!(g.relationship_type_count(), 7);
    }

    #[test]
    fn figure1_coverage_of_film_is_four() {
        let g = figure1_graph();
        let film = g.type_by_name(types::FILM).unwrap();
        assert_eq!(g.entities_of_type(film).len(), 4);
    }

    #[test]
    fn figure1_schema_weights_match_paper() {
        let g = figure1_graph();
        let s = g.schema_graph();
        let film = s.type_by_name(types::FILM).unwrap();
        let genre = s.type_by_name(types::FILM_GENRE).unwrap();
        let actor = s.type_by_name(types::FILM_ACTOR).unwrap();
        let director = s.type_by_name(types::FILM_DIRECTOR).unwrap();
        let producer = s.type_by_name(types::FILM_PRODUCER).unwrap();
        assert_eq!(s.undirected_weight(film, genre), 5);
        assert_eq!(s.undirected_weight(film, actor), 6);
        assert_eq!(s.undirected_weight(film, director), 4);
        assert_eq!(s.undirected_weight(film, producer), 3);
    }

    #[test]
    fn figure1_distances_match_paper() {
        // dist(FILM, FILM ACTOR) = 1 and dist(FILM, AWARD) = 2 (Sec. 4).
        let g = figure1_graph();
        let s = g.schema_graph();
        let m = s.distance_matrix();
        let film = s.type_by_name(types::FILM).unwrap();
        let actor = s.type_by_name(types::FILM_ACTOR).unwrap();
        let award = s.type_by_name(types::AWARD).unwrap();
        assert_eq!(m.distance(film, actor), 1);
        assert_eq!(m.distance(film, award), 2);
    }

    #[test]
    fn will_smith_has_two_types() {
        let g = figure1_graph();
        let smith = g.entity_by_name("Will Smith").unwrap();
        assert_eq!(g.entity(smith).types.len(), 2);
    }
}
