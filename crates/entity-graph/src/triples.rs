//! A simple line-oriented, tab-separated triple format for entity graphs.
//!
//! Real entity graphs are commonly distributed as RDF triples; this module
//! provides a minimal analogue so graphs can be persisted, diffed and shipped
//! as plain text. The format has three record kinds, one per line, with
//! tab-separated fields (entity names may contain spaces but not tabs):
//!
//! ```text
//! # comment lines and blank lines are ignored
//! E<TAB>Will Smith<TAB>FILM ACTOR|FILM PRODUCER
//! R<TAB>Actor<TAB>FILM ACTOR<TAB>FILM
//! T<TAB>Will Smith<TAB>Actor<TAB>Men in Black<TAB>FILM ACTOR<TAB>FILM
//! ```
//!
//! * `E` declares an entity and its types (`|`-separated).
//! * `R` declares a relationship type (surface name, source type, target type).
//! * `T` declares one relationship instance; the trailing two fields name the
//!   relationship type's endpoint types, which disambiguates relationship
//!   types that share a surface name. Entities and types referenced by `T`
//!   lines are created on demand.
//!
//! Round-tripping a graph through [`to_string`] and [`parse_str`] preserves
//! entities, types, relationship types and edge multiplicities.

use crate::builder::EntityGraphBuilder;
use crate::error::{Error, Result};
use crate::graph::EntityGraph;

/// Parses a graph from the triple text format.
pub fn parse_str(input: &str) -> Result<EntityGraph> {
    let mut builder = EntityGraphBuilder::new();
    for (lineno, raw_line) in input.lines().enumerate() {
        let line = raw_line.trim_end_matches(['\r', '\n']);
        let lineno = lineno + 1;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "E" => parse_entity(&mut builder, &fields, lineno)?,
            "R" => parse_rel_type(&mut builder, &fields, lineno)?,
            "T" => parse_triple(&mut builder, &fields, lineno)?,
            other => {
                return Err(Error::Parse {
                    line: lineno,
                    message: format!("unknown record tag {other:?} (expected E, R or T)"),
                })
            }
        }
    }
    Ok(builder.build())
}

fn parse_entity(builder: &mut EntityGraphBuilder, fields: &[&str], lineno: usize) -> Result<()> {
    if fields.len() != 3 {
        return Err(Error::Parse {
            line: lineno,
            message: format!(
                "E record expects 3 tab-separated fields, found {}",
                fields.len()
            ),
        });
    }
    let name = fields[1];
    if name.is_empty() {
        return Err(Error::Parse {
            line: lineno,
            message: "entity name must not be empty".into(),
        });
    }
    let types: Vec<_> = fields[2]
        .split('|')
        .filter(|t| !t.is_empty())
        .map(|t| builder.entity_type(t))
        .collect();
    if types.is_empty() {
        return Err(Error::Parse {
            line: lineno,
            message: format!("entity {name:?} declares no types"),
        });
    }
    builder.entity(name, &types);
    Ok(())
}

fn parse_rel_type(builder: &mut EntityGraphBuilder, fields: &[&str], lineno: usize) -> Result<()> {
    if fields.len() != 4 {
        return Err(Error::Parse {
            line: lineno,
            message: format!(
                "R record expects 4 tab-separated fields, found {}",
                fields.len()
            ),
        });
    }
    let src = builder.entity_type(fields[2]);
    let dst = builder.entity_type(fields[3]);
    builder.relationship_type(fields[1], src, dst);
    Ok(())
}

fn parse_triple(builder: &mut EntityGraphBuilder, fields: &[&str], lineno: usize) -> Result<()> {
    if fields.len() != 6 {
        return Err(Error::Parse {
            line: lineno,
            message: format!(
                "T record expects 6 tab-separated fields, found {}",
                fields.len()
            ),
        });
    }
    let (src_name, rel_name, dst_name, src_type_name, dst_type_name) =
        (fields[1], fields[2], fields[3], fields[4], fields[5]);
    let src_type = builder.entity_type(src_type_name);
    let dst_type = builder.entity_type(dst_type_name);
    let rel = builder.relationship_type(rel_name, src_type, dst_type);
    let src = builder.entity(src_name, &[src_type]);
    let dst = builder.entity(dst_name, &[dst_type]);
    builder.edge(src, rel, dst).map_err(|e| Error::Parse {
        line: lineno,
        message: e.to_string(),
    })?;
    Ok(())
}

/// Serialises a graph to the triple text format.
pub fn to_string(graph: &EntityGraph) -> String {
    let mut out = String::new();
    out.push_str("# entity-graph triple dump\n");
    for (_, entity) in graph.entities() {
        let types: Vec<&str> = entity.types.iter().map(|&t| graph.type_name(t)).collect();
        out.push_str(&format!("E\t{}\t{}\n", entity.name, types.join("|")));
    }
    for (_, rel) in graph.rel_types() {
        out.push_str(&format!(
            "R\t{}\t{}\t{}\n",
            rel.name,
            graph.type_name(rel.src_type),
            graph.type_name(rel.dst_type)
        ));
    }
    for (_, edge) in graph.edges() {
        let rel = graph.rel_type(edge.rel);
        out.push_str(&format!(
            "T\t{}\t{}\t{}\t{}\t{}\n",
            graph.entity(edge.src).name,
            rel.name,
            graph.entity(edge.dst).name,
            graph.type_name(rel.src_type),
            graph.type_name(rel.dst_type)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn parse_minimal_graph() {
        let text = "\
# a tiny graph
E\tWill Smith\tFILM ACTOR
E\tMen in Black\tFILM
R\tActor\tFILM ACTOR\tFILM
T\tWill Smith\tActor\tMen in Black\tFILM ACTOR\tFILM
";
        let g = parse_str(text).unwrap();
        assert_eq!(g.entity_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.type_count(), 2);
        assert_eq!(g.relationship_type_count(), 1);
    }

    #[test]
    fn triple_lines_create_entities_on_demand() {
        let text = "T\tA\tRel\tB\tX\tY\n";
        let g = parse_str(text).unwrap();
        assert_eq!(g.entity_count(), 2);
        assert_eq!(g.type_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn shared_surface_names_stay_distinct() {
        let text = "\
T\tWill Smith\tAward Winners\tSaturn Award\tFILM ACTOR\tAWARD
T\tBarry Sonnenfeld\tAward Winners\tRazzie Award\tFILM DIRECTOR\tAWARD
";
        let g = parse_str(text).unwrap();
        assert_eq!(g.relationship_type_count(), 2);
    }

    #[test]
    fn rejects_unknown_tag() {
        let err = parse_str("X\tfoo\n").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_str("E\tOnlyName\n").is_err());
        assert!(parse_str("R\tRel\tOnlySrc\n").is_err());
        assert!(parse_str("T\ta\tb\tc\n").is_err());
    }

    #[test]
    fn rejects_empty_entity_name_and_types() {
        assert!(parse_str("E\t\tFILM\n").is_err());
        assert!(parse_str("E\tMen in Black\t\n").is_err());
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let g = parse_str("\n   \n# hello\n").unwrap();
        assert_eq!(g.entity_count(), 0);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = fixtures::figure1_graph();
        let text = to_string(&g);
        let g2 = parse_str(&text).unwrap();
        assert_eq!(g.entity_count(), g2.entity_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.type_count(), g2.type_count());
        assert_eq!(g.relationship_type_count(), g2.relationship_type_count());
        // Per-type entity counts survive the round trip.
        for (ty, name) in g.types() {
            let ty2 = g2.type_by_name(name).unwrap();
            assert_eq!(
                g.entities_of_type(ty).len(),
                g2.entities_of_type(ty2).len(),
                "entity count for type {name}"
            );
        }
    }
}
