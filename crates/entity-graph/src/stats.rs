//! Aggregate entity/schema graph statistics (Table 2 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Sizes of an entity graph and its schema graph.
///
/// Table 2 of the paper reports these four numbers for each Freebase domain
/// (e.g. "film": 2M / 63 vertices and 18M / 136 edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of entities (entity-graph vertices).
    pub entities: usize,
    /// Number of relationship instances (entity-graph edges).
    pub edges: usize,
    /// Number of entity types (schema-graph vertices).
    pub entity_types: usize,
    /// Number of relationship types (schema-graph edges).
    pub relationship_types: usize,
}

impl GraphStats {
    /// Formats the statistics in the paper's "entity / schema" style, e.g.
    /// `"190000 / 50 vertices, 1600000 / 136 edges"`.
    pub fn paper_style(&self) -> String {
        format!(
            "{} / {} vertices, {} / {} edges",
            self.entities, self.entity_types, self.edges, self.relationship_types
        )
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entities={} edges={} entity_types={} relationship_types={}",
            self.entities, self.edges, self.entity_types, self.relationship_types
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_paper_style() {
        let s = GraphStats {
            entities: 190_000,
            edges: 1_600_000,
            entity_types: 50,
            relationship_types: 136,
        };
        assert!(s.to_string().contains("entities=190000"));
        assert_eq!(s.paper_style(), "190000 / 50 vertices, 1600000 / 136 edges");
    }
}
