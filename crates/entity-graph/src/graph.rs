//! The entity graph: a directed multigraph of typed, named entities.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::entity::{Edge, Entity, RelType};
use crate::error::{Error, Result};
use crate::id::{EdgeId, EntityId, RelTypeId, TypeId};
use crate::schema::{SchemaEdge, SchemaGraph};
use crate::stats::GraphStats;

/// Direction of traversal relative to an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Follow edges leaving the entity (`e(v, ·)`).
    Outgoing,
    /// Follow edges arriving at the entity (`e(·, v)`).
    Incoming,
}

/// An immutable entity graph `Gd(Vd, Ed)` (Sec. 2 of the paper).
///
/// Construct one with [`EntityGraphBuilder`](crate::EntityGraphBuilder) or by
/// parsing the [`triples`](crate::triples) format. The graph owns all strings
/// and pre-computes the adjacency indexes needed by scoring and tuple
/// materialisation:
///
/// * entities grouped by entity type,
/// * edges grouped by relationship type,
/// * per-entity outgoing / incoming edge lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityGraph {
    pub(crate) entities: Vec<Entity>,
    pub(crate) entity_by_name: HashMap<String, EntityId>,
    pub(crate) type_names: Vec<String>,
    pub(crate) type_by_name: HashMap<String, TypeId>,
    pub(crate) rel_types: Vec<RelType>,
    pub(crate) rel_by_key: HashMap<(String, TypeId, TypeId), RelTypeId>,
    pub(crate) edges: Vec<Edge>,
    // Indexes (derived in `freeze`).
    pub(crate) entities_by_type: Vec<Vec<EntityId>>,
    pub(crate) edges_by_rel: Vec<Vec<EdgeId>>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
}

impl EntityGraph {
    /// Number of entities `|Vd|`.
    #[inline]
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of relationship instances `|Ed|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of entity types `|Vs|`.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Number of relationship types `|Es|`.
    #[inline]
    pub fn relationship_type_count(&self) -> usize {
        self.rel_types.len()
    }

    /// Looks up an entity record.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Looks up an entity by display name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_by_name.get(name).copied()
    }

    /// Name of an entity type.
    pub fn type_name(&self, ty: TypeId) -> &str {
        &self.type_names[ty.index()]
    }

    /// Looks up an entity type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Looks up a relationship type record.
    pub fn rel_type(&self, rel: RelTypeId) -> &RelType {
        &self.rel_types[rel.index()]
    }

    /// Looks up a relationship type by surface name and endpoint types.
    pub fn rel_type_by_key(&self, name: &str, src: TypeId, dst: TypeId) -> Option<RelTypeId> {
        self.rel_by_key.get(&(name.to_owned(), src, dst)).copied()
    }

    /// The edge record for an edge id.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// All entities of the given type, i.e. `T.τ` in the paper's notation.
    pub fn entities_of_type(&self, ty: TypeId) -> &[EntityId] {
        &self.entities_by_type[ty.index()]
    }

    /// All edges belonging to the given relationship type.
    pub fn edges_of_rel_type(&self, rel: RelTypeId) -> &[EdgeId] {
        &self.edges_by_rel[rel.index()]
    }

    /// Outgoing edges of an entity.
    pub fn out_edges(&self, entity: EntityId) -> &[EdgeId] {
        &self.out_edges[entity.index()]
    }

    /// Incoming edges of an entity.
    pub fn in_edges(&self, entity: EntityId) -> &[EdgeId] {
        &self.in_edges[entity.index()]
    }

    /// Iterates over `(EntityId, &Entity)` pairs.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &Entity)> {
        self.entities
            .iter()
            .enumerate()
            .map(|(i, e)| (EntityId::from_usize(i), e))
    }

    /// Iterates over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_usize(i), *e))
    }

    /// Iterates over `(TypeId, &str)` pairs.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.type_names
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId::from_usize(i), n.as_str()))
    }

    /// Iterates over `(RelTypeId, &RelType)` pairs.
    pub fn rel_types(&self) -> impl Iterator<Item = (RelTypeId, &RelType)> {
        self.rel_types
            .iter()
            .enumerate()
            .map(|(i, r)| (RelTypeId::from_usize(i), r))
    }

    /// The entities adjacent to `entity` through edges of relationship type
    /// `rel`, following the given direction — i.e. the value `t.γ` of a tuple
    /// on a non-key attribute (Def. 1).
    ///
    /// The result is sorted and de-duplicated (attribute values are sets).
    pub fn neighbors_via(
        &self,
        entity: EntityId,
        rel: RelTypeId,
        direction: Direction,
    ) -> Vec<EntityId> {
        let edge_ids = match direction {
            Direction::Outgoing => &self.out_edges[entity.index()],
            Direction::Incoming => &self.in_edges[entity.index()],
        };
        let mut out: Vec<EntityId> = edge_ids
            .iter()
            .map(|&eid| self.edges[eid.index()])
            .filter(|e| e.rel == rel)
            .map(|e| match direction {
                Direction::Outgoing => e.dst,
                Direction::Incoming => e.src,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Validates that an entity id is in range.
    pub fn check_entity(&self, id: EntityId) -> Result<()> {
        if id.index() < self.entities.len() {
            Ok(())
        } else {
            Err(Error::UnknownId {
                kind: "entity",
                index: id.raw(),
            })
        }
    }

    /// Derives the schema graph `Gs(Vs, Es)` of this entity graph (Sec. 2).
    ///
    /// Each entity type becomes a vertex annotated with the number of entities
    /// bearing that type; each relationship type with at least one edge
    /// becomes a schema edge annotated with its edge count.
    pub fn schema_graph(&self) -> SchemaGraph {
        let entity_counts: Vec<u64> = self
            .entities_by_type
            .iter()
            .map(|v| v.len() as u64)
            .collect();
        let mut schema_edges = Vec::new();
        for (idx, rel) in self.rel_types.iter().enumerate() {
            let count = self.edges_by_rel[idx].len() as u64;
            if count == 0 {
                continue;
            }
            schema_edges.push(SchemaEdge {
                rel: RelTypeId::from_usize(idx),
                name: rel.name.clone(),
                src: rel.src_type,
                dst: rel.dst_type,
                edge_count: count,
            });
        }
        SchemaGraph::new(self.type_names.clone(), entity_counts, schema_edges)
    }

    /// Aggregate statistics (Table 2 of the paper).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            entities: self.entity_count(),
            edges: self.edge_count(),
            entity_types: self.type_count(),
            relationship_types: self.relationship_type_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EntityGraphBuilder;

    fn tiny() -> EntityGraph {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let hancock = b.entity("Hancock", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        b.edge(smith, acted, mib).unwrap();
        b.edge(smith, acted, hancock).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.entity_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.type_count(), 2);
        assert_eq!(g.relationship_type_count(), 1);
    }

    #[test]
    fn lookups_by_name() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        assert_eq!(g.type_name(film), "FILM");
        let smith = g.entity_by_name("Will Smith").unwrap();
        assert_eq!(g.entity(smith).name, "Will Smith");
        assert!(g.entity_by_name("Nobody").is_none());
        assert!(g.type_by_name("NOPE").is_none());
    }

    #[test]
    fn entities_of_type_groups_correctly() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        let actor = g.type_by_name("FILM ACTOR").unwrap();
        assert_eq!(g.entities_of_type(film).len(), 2);
        assert_eq!(g.entities_of_type(actor).len(), 1);
    }

    #[test]
    fn neighbors_via_follows_direction() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        let actor = g.type_by_name("FILM ACTOR").unwrap();
        let acted = g.rel_type_by_key("Actor", actor, film).unwrap();
        let smith = g.entity_by_name("Will Smith").unwrap();
        let mib = g.entity_by_name("Men in Black").unwrap();

        let films = g.neighbors_via(smith, acted, Direction::Outgoing);
        assert_eq!(films.len(), 2);
        let actors = g.neighbors_via(mib, acted, Direction::Incoming);
        assert_eq!(actors, vec![smith]);
        // No outgoing "Actor" edges from a film.
        assert!(g.neighbors_via(mib, acted, Direction::Outgoing).is_empty());
    }

    #[test]
    fn schema_graph_derivation() {
        let g = tiny();
        let s = g.schema_graph();
        assert_eq!(s.type_count(), 2);
        assert_eq!(s.relationship_type_count(), 1);
        let film = g.type_by_name("FILM").unwrap();
        assert_eq!(s.entity_count_of(film), 2);
        assert_eq!(s.edges()[0].edge_count, 2);
    }

    #[test]
    fn check_entity_bounds() {
        let g = tiny();
        assert!(g.check_entity(EntityId::new(0)).is_ok());
        assert!(g.check_entity(EntityId::new(99)).is_err());
    }

    #[test]
    fn stats_match_counts() {
        let g = tiny();
        let s = g.stats();
        assert_eq!(s.entities, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.entity_types, 2);
        assert_eq!(s.relationship_types, 1);
    }
}
