//! The entity graph: a directed multigraph of typed, named entities, stored
//! in a compact CSR (compressed-sparse-row) columnar layout.

use std::collections::HashMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::csr::{Csr, RelGroupedNeighbors};
use crate::delta::{self, AppliedDelta, GraphDelta};
use crate::entity::{Edge, Entity, RelType};
use crate::error::{Error, Result};
use crate::id::{EdgeId, EntityId, RelTypeId, TypeId};
use crate::interner::Interner;
use crate::schema::{SchemaEdge, SchemaGraph};
use crate::stats::GraphStats;

/// Direction of traversal relative to an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Follow edges leaving the entity (`e(v, ·)`).
    Outgoing,
    /// Follow edges arriving at the entity (`e(·, v)`).
    Incoming,
}

/// An immutable entity graph `Gd(Vd, Ed)` (Sec. 2 of the paper).
///
/// Construct one with [`EntityGraphBuilder`](crate::EntityGraphBuilder) or by
/// parsing the [`triples`](crate::triples) format. The graph owns all strings
/// and pre-computes the adjacency indexes needed by scoring and tuple
/// materialisation.
///
/// # Storage layout
///
/// All adjacency lives in flat CSR arrays ([`Csr`], [`RelGroupedNeighbors`])
/// built once at [`build`](crate::EntityGraphBuilder::build) time:
///
/// * entities grouped by entity type,
/// * edges grouped by relationship type,
/// * per-entity outgoing / incoming edge lists,
/// * per-entity neighbor sets, pre-grouped by relationship type, sorted and
///   de-duplicated — so the hot [`neighbors_via`](Self::neighbors_via) path
///   returns a borrowed slice without scanning, sorting or allocating.
///
/// Relationship-type lookup keys intern their surface name in an
/// [`Interner`], so [`rel_type_by_key`](Self::rel_type_by_key) never
/// allocates. The derived [`SchemaGraph`] is memoized behind a `OnceLock`.
///
/// # Immutability contract
///
/// Once built, a graph never changes: every index, every borrowed slice and
/// the memoized schema graph stay valid for the graph's lifetime, which is
/// what lets the serving layer share one graph across worker threads behind
/// an `Arc` without locks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityGraph {
    pub(crate) entities: Vec<Entity>,
    pub(crate) entity_by_name: HashMap<String, EntityId>,
    pub(crate) type_names: Vec<String>,
    pub(crate) type_by_name: HashMap<String, TypeId>,
    pub(crate) rel_types: Vec<RelType>,
    /// Interned relationship-type surface names; `rel_by_key` keys reference
    /// these indices so lookups borrow instead of building an owned key.
    pub(crate) rel_names: Interner,
    pub(crate) rel_by_key: HashMap<(u32, TypeId, TypeId), RelTypeId>,
    pub(crate) edges: Vec<Edge>,
    // CSR indexes (derived in `build`).
    pub(crate) entities_by_type: Csr<EntityId>,
    pub(crate) edges_by_rel: Csr<EdgeId>,
    pub(crate) out_edges: Csr<EdgeId>,
    pub(crate) in_edges: Csr<EdgeId>,
    pub(crate) out_neighbors: RelGroupedNeighbors,
    pub(crate) in_neighbors: RelGroupedNeighbors,
    /// Memoized schema-graph derivation; cloned graphs keep the cached value.
    #[serde(skip)]
    pub(crate) schema_cache: OnceLock<SchemaGraph>,
}

impl EntityGraph {
    /// Number of entities `|Vd|`.
    #[inline]
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of relationship instances `|Ed|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of entity types `|Vs|`.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Number of relationship types `|Es|`.
    #[inline]
    pub fn relationship_type_count(&self) -> usize {
        self.rel_types.len()
    }

    /// Looks up an entity record.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Looks up an entity by display name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_by_name.get(name).copied()
    }

    /// Name of an entity type.
    pub fn type_name(&self, ty: TypeId) -> &str {
        &self.type_names[ty.index()]
    }

    /// Looks up an entity type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Looks up a relationship type record.
    pub fn rel_type(&self, rel: RelTypeId) -> &RelType {
        &self.rel_types[rel.index()]
    }

    /// Looks up a relationship type by surface name and endpoint types.
    ///
    /// Allocation-free: the surface name resolves through the graph's
    /// interner (a borrowed `&str` lookup) and the composite key is three
    /// plain integers.
    pub fn rel_type_by_key(&self, name: &str, src: TypeId, dst: TypeId) -> Option<RelTypeId> {
        let name_id = self.rel_names.get(name)?;
        self.rel_by_key.get(&(name_id, src, dst)).copied()
    }

    /// The edge record for an edge id.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// All entities of the given type, i.e. `T.τ` in the paper's notation.
    pub fn entities_of_type(&self, ty: TypeId) -> &[EntityId] {
        self.entities_by_type.slice(ty.index())
    }

    /// All edges belonging to the given relationship type.
    pub fn edges_of_rel_type(&self, rel: RelTypeId) -> &[EdgeId] {
        self.edges_by_rel.slice(rel.index())
    }

    /// Outgoing edges of an entity.
    pub fn out_edges(&self, entity: EntityId) -> &[EdgeId] {
        self.out_edges.slice(entity.index())
    }

    /// Incoming edges of an entity.
    pub fn in_edges(&self, entity: EntityId) -> &[EdgeId] {
        self.in_edges.slice(entity.index())
    }

    /// Iterates over `(EntityId, &Entity)` pairs.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &Entity)> {
        self.entities
            .iter()
            .enumerate()
            .map(|(i, e)| (EntityId::from_usize(i), e))
    }

    /// Iterates over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_usize(i), *e))
    }

    /// Iterates over `(TypeId, &str)` pairs.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.type_names
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId::from_usize(i), n.as_str()))
    }

    /// Iterates over `(RelTypeId, &RelType)` pairs.
    pub fn rel_types(&self) -> impl Iterator<Item = (RelTypeId, &RelType)> {
        self.rel_types
            .iter()
            .enumerate()
            .map(|(i, r)| (RelTypeId::from_usize(i), r))
    }

    /// The entities adjacent to `entity` through edges of relationship type
    /// `rel`, following the given direction — i.e. the value `t.γ` of a tuple
    /// on a non-key attribute (Def. 1).
    ///
    /// The result is sorted and de-duplicated (attribute values are sets) and
    /// borrows directly from the pre-grouped CSR index: the hot path of
    /// entropy scoring and tuple materialisation performs no allocation, no
    /// edge scan and no sort. Use
    /// [`neighbors_via_owned`](Self::neighbors_via_owned) when an owned `Vec`
    /// is genuinely required.
    #[inline]
    pub fn neighbors_via(
        &self,
        entity: EntityId,
        rel: RelTypeId,
        direction: Direction,
    ) -> &[EntityId] {
        match direction {
            Direction::Outgoing => self.out_neighbors.neighbors(entity.index(), rel),
            Direction::Incoming => self.in_neighbors.neighbors(entity.index(), rel),
        }
    }

    /// Iterates an entity's neighbor segments in relationship-type order,
    /// yielding each relationship type together with its sorted,
    /// de-duplicated neighbor slice — the bulk counterpart of
    /// [`neighbors_via`](Self::neighbors_via), used by the sharding layer to
    /// encode an entity's whole adjacency in one directory pass.
    pub fn neighbor_segments(
        &self,
        entity: EntityId,
        direction: Direction,
    ) -> impl Iterator<Item = (RelTypeId, &[EntityId])> {
        match direction {
            Direction::Outgoing => self.out_neighbors.segments(entity.index()),
            Direction::Incoming => self.in_neighbors.segments(entity.index()),
        }
    }

    /// Heap bytes of the two pre-grouped neighbor indexes, split as
    /// `(payload_bytes, total_bytes)` summed over both directions — the
    /// unsharded baseline a [`MemoryReport`](crate::MemoryReport) compares
    /// sharded storage against.
    pub fn neighbor_index_bytes(&self) -> (u64, u64) {
        let (out_payload, out_total) = self.out_neighbors.heap_bytes();
        let (in_payload, in_total) = self.in_neighbors.heap_bytes();
        (out_payload + in_payload, out_total + in_total)
    }

    /// Compatibility shim over [`neighbors_via`](Self::neighbors_via) for
    /// callers that need to own the neighbor set (one copy, still no scan or
    /// sort).
    pub fn neighbors_via_owned(
        &self,
        entity: EntityId,
        rel: RelTypeId,
        direction: Direction,
    ) -> Vec<EntityId> {
        self.neighbors_via(entity, rel, direction).to_vec()
    }

    /// Validates that an entity id is in range.
    pub fn check_entity(&self, id: EntityId) -> Result<()> {
        if id.index() < self.entities.len() {
            Ok(())
        } else {
            Err(Error::UnknownId {
                kind: "entity",
                index: id.raw(),
            })
        }
    }

    /// The schema graph `Gs(Vs, Es)` of this entity graph (Sec. 2), derived
    /// once and memoized for the graph's lifetime.
    ///
    /// Scoring, baselines and the serving layer all consult the schema graph
    /// repeatedly; the memoized borrow means none of them re-clones every
    /// type name. Call [`derive_schema_graph`](Self::derive_schema_graph) to
    /// force an uncached derivation (benches, equivalence tests).
    pub fn schema_graph(&self) -> &SchemaGraph {
        self.schema_cache.get_or_init(|| self.derive_schema_graph())
    }

    /// Derives the schema graph from scratch, bypassing the memo.
    ///
    /// Each entity type becomes a vertex annotated with the number of entities
    /// bearing that type; each relationship type with at least one edge
    /// becomes a schema edge annotated with its edge count.
    pub fn derive_schema_graph(&self) -> SchemaGraph {
        let entity_counts: Vec<u64> = (0..self.type_count())
            .map(|i| self.entities_by_type.slice(i).len() as u64)
            .collect();
        let mut schema_edges = Vec::new();
        for (idx, rel) in self.rel_types.iter().enumerate() {
            let count = self.edges_by_rel.slice(idx).len() as u64;
            if count == 0 {
                continue;
            }
            schema_edges.push(SchemaEdge {
                rel: RelTypeId::from_usize(idx),
                name: rel.name.clone(),
                src: rel.src_type,
                dst: rel.dst_type,
                edge_count: count,
            });
        }
        SchemaGraph::new(self.type_names.clone(), entity_counts, schema_edges)
    }

    /// Aggregate statistics (Table 2 of the paper).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            entities: self.entity_count(),
            edges: self.edge_count(),
            entity_types: self.type_count(),
            relationship_types: self.relationship_type_count(),
        }
    }

    /// Applies a batch of edits, producing the next frozen graph version by
    /// splicing the delta into this graph's CSR arrays — byte-identical to a
    /// from-scratch rebuild of the updated content, without re-running the
    /// full build. This graph is never modified; a failed batch (typed
    /// error) leaves everything as it was.
    ///
    /// See the [`delta`](crate::delta) module docs for batch semantics, the
    /// splice contract, and an example.
    ///
    /// # Errors
    ///
    /// Returns the first op that fails validation: [`Error::DuplicateEntity`],
    /// [`Error::EntityInUse`], [`Error::NoSuchEdge`], [`Error::UnknownName`]
    /// or [`Error::TypeMismatch`].
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<AppliedDelta> {
        let _span = preview_obs::span!(preview_obs::Stage::DeltaApply, ops = delta.ops().len());
        delta::apply(self, delta)
    }
}

/// Structural equality over the full storage: entities, name indexes, type
/// and relationship-type tables, the interner, the edge list and **every CSR
/// offset/payload array**. Two equal graphs are indistinguishable to any
/// reader — this is the equality the delta splice contract (spliced ==
/// rebuilt, see [`delta`](crate::delta)) is stated in. The memoized schema
/// cache is deliberately excluded: it is derived state.
impl PartialEq for EntityGraph {
    fn eq(&self, other: &Self) -> bool {
        self.entities == other.entities
            && self.entity_by_name == other.entity_by_name
            && self.type_names == other.type_names
            && self.type_by_name == other.type_by_name
            && self.rel_types == other.rel_types
            && self.rel_names == other.rel_names
            && self.rel_by_key == other.rel_by_key
            && self.edges == other.edges
            && self.entities_by_type == other.entities_by_type
            && self.edges_by_rel == other.edges_by_rel
            && self.out_edges == other.out_edges
            && self.in_edges == other.in_edges
            && self.out_neighbors == other.out_neighbors
            && self.in_neighbors == other.in_neighbors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EntityGraphBuilder;

    fn tiny() -> EntityGraph {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let hancock = b.entity("Hancock", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        b.edge(smith, acted, mib).unwrap();
        b.edge(smith, acted, hancock).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.entity_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.type_count(), 2);
        assert_eq!(g.relationship_type_count(), 1);
    }

    #[test]
    fn lookups_by_name() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        assert_eq!(g.type_name(film), "FILM");
        let smith = g.entity_by_name("Will Smith").unwrap();
        assert_eq!(g.entity(smith).name, "Will Smith");
        assert!(g.entity_by_name("Nobody").is_none());
        assert!(g.type_by_name("NOPE").is_none());
    }

    #[test]
    fn rel_type_lookup_borrows_and_misses_cleanly() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        let actor = g.type_by_name("FILM ACTOR").unwrap();
        assert!(g.rel_type_by_key("Actor", actor, film).is_some());
        // Unknown surface name, and known name with wrong endpoints.
        assert!(g.rel_type_by_key("Director", actor, film).is_none());
        assert!(g.rel_type_by_key("Actor", film, actor).is_none());
    }

    #[test]
    fn entities_of_type_groups_correctly() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        let actor = g.type_by_name("FILM ACTOR").unwrap();
        assert_eq!(g.entities_of_type(film).len(), 2);
        assert_eq!(g.entities_of_type(actor).len(), 1);
    }

    #[test]
    fn neighbors_via_follows_direction() {
        let g = tiny();
        let film = g.type_by_name("FILM").unwrap();
        let actor = g.type_by_name("FILM ACTOR").unwrap();
        let acted = g.rel_type_by_key("Actor", actor, film).unwrap();
        let smith = g.entity_by_name("Will Smith").unwrap();
        let mib = g.entity_by_name("Men in Black").unwrap();

        let films = g.neighbors_via(smith, acted, Direction::Outgoing);
        assert_eq!(films.len(), 2);
        let actors = g.neighbors_via(mib, acted, Direction::Incoming);
        assert_eq!(actors, &[smith]);
        // No outgoing "Actor" edges from a film.
        assert!(g.neighbors_via(mib, acted, Direction::Outgoing).is_empty());
        // The owned shim returns the same set.
        assert_eq!(
            g.neighbors_via_owned(smith, acted, Direction::Outgoing),
            films.to_vec()
        );
    }

    #[test]
    fn neighbors_via_dedups_parallel_edges() {
        let mut b = EntityGraphBuilder::new();
        let film = b.entity_type("FILM");
        let actor = b.entity_type("FILM ACTOR");
        let acted = b.relationship_type("Actor", actor, film);
        let mib = b.entity("Men in Black", &[film]);
        let smith = b.entity("Will Smith", &[actor]);
        b.edge(smith, acted, mib).unwrap();
        b.edge(smith, acted, mib).unwrap();
        let g = b.build();
        assert_eq!(g.out_edges(smith).len(), 2);
        assert_eq!(g.neighbors_via(smith, acted, Direction::Outgoing), &[mib]);
    }

    #[test]
    fn schema_graph_derivation() {
        let g = tiny();
        let s = g.schema_graph();
        assert_eq!(s.type_count(), 2);
        assert_eq!(s.relationship_type_count(), 1);
        let film = g.type_by_name("FILM").unwrap();
        assert_eq!(s.entity_count_of(film), 2);
        assert_eq!(s.edges()[0].edge_count, 2);
    }

    #[test]
    fn schema_graph_is_memoized() {
        let g = tiny();
        let a: *const SchemaGraph = g.schema_graph();
        let b: *const SchemaGraph = g.schema_graph();
        assert_eq!(a, b, "repeated calls return the same memoized instance");
        // The uncached derivation produces an equivalent graph.
        let fresh = g.derive_schema_graph();
        assert_eq!(fresh.type_count(), g.schema_graph().type_count());
        assert_eq!(
            fresh.relationship_type_count(),
            g.schema_graph().relationship_type_count()
        );
    }

    #[test]
    fn check_entity_bounds() {
        let g = tiny();
        assert!(g.check_entity(EntityId::new(0)).is_ok());
        assert!(g.check_entity(EntityId::new(99)).is_err());
    }

    #[test]
    fn stats_match_counts() {
        let g = tiny();
        let s = g.stats();
        assert_eq!(s.entities, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.entity_types, 2);
        assert_eq!(s.relationship_types, 1);
    }
}
