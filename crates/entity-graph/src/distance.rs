//! All-pairs undirected shortest-path distances between entity types.
//!
//! The distance between two preview tables is the length of the shortest
//! *undirected* path between their key attributes in the schema graph
//! (Sec. 4). Schema graphs are small (tens of types), so a BFS from every
//! vertex is cheap and the full matrix is materialised once and reused by
//! the tight/diverse discovery algorithms.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::id::TypeId;
use crate::schema::SchemaGraph;

/// Distance value representing "unreachable" (disconnected schema graphs are
/// allowed; the paper notes Freebase schema graphs may be disconnected).
pub const UNREACHABLE: u32 = u32::MAX;

/// Dense all-pairs shortest-path matrix over entity types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n * n` matrix; `dist[i*n + j]` is the hop distance.
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes the matrix by running a BFS from every entity type over the
    /// undirected view of the schema graph.
    pub fn from_schema(schema: &SchemaGraph) -> Self {
        let n = schema.type_count();
        // Undirected adjacency lists (deduplicated neighbours).
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in schema.edges() {
            let (s, d) = (e.src.index(), e.dst.index());
            if s != d {
                adj[s].push(d as u32);
                adj[d].push(s as u32);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }

        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for start in 0..n {
            let row = &mut dist[start * n..(start + 1) * n];
            row[start] = 0;
            queue.clear();
            queue.push_back(start as u32);
            while let Some(u) = queue.pop_front() {
                let du = row[u as usize];
                for &v in &adj[u as usize] {
                    if row[v as usize] == UNREACHABLE {
                        row[v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self { n, dist }
    }

    /// Number of entity types covered by the matrix.
    pub fn type_count(&self) -> usize {
        self.n
    }

    /// Hop distance between two entity types ([`UNREACHABLE`] if they lie in
    /// different connected components).
    #[inline]
    pub fn distance(&self, a: TypeId, b: TypeId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Whether the two types are connected by any undirected path.
    pub fn connected(&self, a: TypeId, b: TypeId) -> bool {
        self.distance(a, b) != UNREACHABLE
    }

    /// The largest finite distance in the matrix (the diameter of the largest
    /// component), or `None` for an empty graph.
    pub fn diameter(&self) -> Option<u32> {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
    }

    /// Mean of all finite pairwise distances between *distinct* types, or
    /// `None` if no such pair exists. (The paper quotes an average path length
    /// of 3–4 for the Freebase "film" schema graph.)
    pub fn average_path_length(&self) -> Option<f64> {
        let mut sum = 0u64;
        let mut count = 0u64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let d = self.dist[i * self.n + j];
                if d != UNREACHABLE {
                    sum += u64::from(d);
                    count += 1;
                }
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum as f64 / count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RelTypeId;
    use crate::schema::SchemaEdge;

    fn edge(src: u32, dst: u32, count: u64) -> SchemaEdge {
        SchemaEdge {
            rel: RelTypeId::new(0),
            name: "r".into(),
            src: TypeId::new(src),
            dst: TypeId::new(dst),
            edge_count: count,
        }
    }

    /// A path graph 0 - 1 - 2 - 3 plus an isolated vertex 4.
    fn path_schema() -> SchemaGraph {
        SchemaGraph::new(
            (0..5).map(|i| format!("T{i}")).collect(),
            vec![1; 5],
            vec![edge(0, 1, 1), edge(1, 2, 1), edge(2, 3, 1)],
        )
    }

    #[test]
    fn distances_on_path() {
        let m = path_schema().distance_matrix();
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(0)), 0);
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(1)), 1);
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(3)), 3);
        assert_eq!(m.distance(TypeId::new(3), TypeId::new(0)), 3);
    }

    #[test]
    fn disconnected_vertex_is_unreachable() {
        let m = path_schema().distance_matrix();
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(4)), UNREACHABLE);
        assert!(!m.connected(TypeId::new(0), TypeId::new(4)));
        assert!(m.connected(TypeId::new(0), TypeId::new(3)));
    }

    #[test]
    fn direction_is_ignored() {
        // Edges 0->1 and 2->1: undirected distance 0..2 is 2.
        let s = SchemaGraph::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![1, 1, 1],
            vec![edge(0, 1, 1), edge(2, 1, 1)],
        );
        let m = s.distance_matrix();
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(2)), 2);
    }

    #[test]
    fn diameter_and_average() {
        let m = path_schema().distance_matrix();
        assert_eq!(m.diameter(), Some(3));
        let avg = m.average_path_length().unwrap();
        // Pairs (within the path component): d=1 x3, d=2 x2, d=3 x1 (each counted
        // twice in the directed sum): (3*1 + 2*2 + 1*3) * 2 / 12 = 20/12.
        assert!((avg - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_do_not_change_distance() {
        let s = SchemaGraph::new(
            vec!["A".into(), "B".into()],
            vec![1, 1],
            vec![edge(0, 1, 1), edge(0, 1, 7), edge(1, 0, 2)],
        );
        let m = s.distance_matrix();
        assert_eq!(m.distance(TypeId::new(0), TypeId::new(1)), 1);
    }

    #[test]
    fn empty_schema() {
        let s = SchemaGraph::new(vec![], vec![], vec![]);
        let m = s.distance_matrix();
        assert_eq!(m.type_count(), 0);
        assert_eq!(m.diameter(), None);
        assert_eq!(m.average_path_length(), None);
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = path_schema().distance_matrix();
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(
                    m.distance(TypeId::new(i), TypeId::new(j)),
                    m.distance(TypeId::new(j), TypeId::new(i))
                );
            }
        }
    }
}
