//! Error types for entity-graph construction and ingestion.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or parsing entity graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An edge endpoint does not carry the entity type required by the edge's
    /// relationship type (the relationship type determines its endpoint
    /// types, Sec. 2 of the paper).
    TypeMismatch {
        /// Human-readable description of the offending endpoint.
        detail: String,
    },
    /// An identifier referenced a vertex/edge/type that does not exist.
    UnknownId {
        /// Which identifier space the lookup failed in.
        kind: &'static str,
        /// The raw index that was out of range.
        index: u32,
    },
    /// A name lookup failed (entity, type or relationship type not present).
    UnknownName {
        /// Which namespace the lookup failed in.
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A triple-format line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A delta tried to add an entity whose name is already taken by a live
    /// entity (delta additions are strict: merging types into an existing
    /// entity is not an addition).
    DuplicateEntity {
        /// The name that is already registered.
        name: String,
    },
    /// A delta tried to remove an entity that is still referenced by live
    /// relationship edges; the edges must be removed first (in the same
    /// batch or an earlier one).
    EntityInUse {
        /// Name of the entity that could not be removed.
        name: String,
        /// Number of live edges still referencing it.
        edges: usize,
    },
    /// A delta tried to remove a relationship edge that does not exist.
    NoSuchEdge {
        /// Human-readable description of the missing `src -rel-> dst` triple.
        detail: String,
    },
    /// A graph would exceed a `u32`-indexed capacity limit.
    ///
    /// All identifier spaces ([`EntityId`](crate::EntityId),
    /// [`EdgeId`](crate::EdgeId), …) and every CSR offset array are
    /// `u32`-backed; the counting sorts in
    /// [`EntityGraphBuilder::build`](crate::EntityGraphBuilder::build) would
    /// silently wrap past `u32::MAX` entities, edges or type memberships.
    /// [`check_graph_capacity`](crate::check_graph_capacity) and
    /// [`EntityGraphBuilder::try_build`](crate::EntityGraphBuilder::try_build)
    /// surface the limit as this typed error instead.
    GraphTooLarge {
        /// Which counter overflowed (`"entities"`, `"edges"`,
        /// `"type memberships"`).
        what: &'static str,
        /// The requested count.
        requested: u64,
        /// The largest representable count.
        max: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { detail } => {
                write!(f, "relationship endpoint type mismatch: {detail}")
            }
            Error::UnknownId { kind, index } => write!(f, "unknown {kind} id {index}"),
            Error::UnknownName { kind, name } => write!(f, "unknown {kind} name {name:?}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::DuplicateEntity { name } => {
                write!(
                    f,
                    "entity {name:?} already exists; delta additions must be fresh"
                )
            }
            Error::EntityInUse { name, edges } => write!(
                f,
                "entity {name:?} is still referenced by {edges} live relationship edge(s)"
            ),
            Error::NoSuchEdge { detail } => write!(f, "no such relationship edge: {detail}"),
            Error::GraphTooLarge {
                what,
                requested,
                max,
            } => write!(
                f,
                "graph too large: {requested} {what} exceed the u32-indexed limit of {max}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::TypeMismatch {
            detail: "entity \"Will Smith\" lacks type FILM".into(),
        };
        assert!(e.to_string().contains("Will Smith"));

        let e = Error::UnknownId {
            kind: "entity",
            index: 7,
        };
        assert_eq!(e.to_string(), "unknown entity id 7");

        let e = Error::UnknownName {
            kind: "entity type",
            name: "FILM".into(),
        };
        assert!(e.to_string().contains("FILM"));

        let e = Error::Parse {
            line: 3,
            message: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = Error::GraphTooLarge {
            what: "edges",
            requested: 5_000_000_000,
            max: u64::from(u32::MAX),
        };
        assert!(e.to_string().contains("5000000000"));
        assert!(e.to_string().contains("edges"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::UnknownId {
            kind: "edge",
            index: 0,
        });
    }
}
