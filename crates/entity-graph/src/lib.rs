//! Entity-graph substrate for the preview-tables system.
//!
//! This crate provides the data model the paper *Generating Preview Tables for
//! Entity Graphs* (Yan et al., SIGMOD 2016) operates on:
//!
//! * an [`EntityGraph`]: a directed multigraph whose vertices are named,
//!   typed entities and whose edges are typed relationships (Sec. 2 of the
//!   paper),
//! * a [`SchemaGraph`] derived from an entity graph by merging same-type
//!   vertices and edges,
//! * a simple line-oriented triple format for ingesting and persisting entity
//!   graphs ([`triples`]),
//! * undirected shortest-path distances between entity types in the schema
//!   graph ([`DistanceMatrix`]), used by the tight/diverse preview
//!   constraints,
//! * aggregate statistics ([`GraphStats`]) used to reproduce Table 2.
//!
//! The crate is deliberately independent of the preview-discovery logic: it is
//! a general-purpose, in-memory entity-graph store with interned identifiers
//! and cheap integer-based traversal.
//!
//! # Example
//!
//! ```
//! use entity_graph::EntityGraphBuilder;
//!
//! let mut b = EntityGraphBuilder::new();
//! let film = b.entity_type("FILM");
//! let actor = b.entity_type("FILM ACTOR");
//! let acted_in = b.relationship_type("Actor", actor, film);
//!
//! let mib = b.entity("Men in Black", &[film]);
//! let smith = b.entity("Will Smith", &[actor]);
//! b.edge(smith, acted_in, mib).unwrap();
//!
//! let graph = b.build();
//! assert_eq!(graph.entity_count(), 2);
//! assert_eq!(graph.edge_count(), 1);
//!
//! let schema = graph.schema_graph();
//! assert_eq!(schema.type_count(), 2);
//! assert_eq!(schema.relationship_type_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod builder;
mod csr;
mod distance;
mod entity;
mod error;
mod graph;
mod id;
mod interner;
mod schema;
mod stats;

pub mod delta;
pub mod encoding;
pub mod fixtures;
pub mod shard;
pub mod triples;

pub use builder::{check_graph_capacity, EntityGraphBuilder, MAX_GRAPH_DIMENSION};
pub use csr::{Csr, RelGroupedNeighbors};
pub use delta::{AppliedDelta, DeltaOp, DeltaSummary, GraphDelta};
pub use distance::{DistanceMatrix, UNREACHABLE};
pub use encoding::{EncodedNeighbors, EncodedNeighborsBuilder};
pub use entity::{Edge, Entity, RelType};
pub use error::{Error, Result};
pub use graph::{Direction, EntityGraph};
pub use id::{EdgeId, EntityId, RelTypeId, TypeId};
pub use interner::Interner;
pub use schema::{SchemaEdge, SchemaGraph};
pub use shard::{
    AppliedShardedDelta, GraphShard, MemoryReport, ShardLoc, ShardMemoryReport, ShardedGraph,
    ShardingStrategy,
};
pub use stats::GraphStats;

/// Compile-time guarantees that the substrate types shared across serving
/// threads (behind `Arc`, see the `preview-service` crate) are
/// `Send + Sync + Clone`, so a non-thread-safe interior (e.g. `Rc`,
/// `RefCell`) can never silently enter the graph store.
mod static_assertions {
    #![allow(dead_code)]

    use super::*;

    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    const _: () = {
        assert_send_sync_clone::<EntityGraph>();
        assert_send_sync_clone::<GraphDelta>();
        assert_send_sync_clone::<DeltaSummary>();
        assert_send_sync_clone::<SchemaGraph>();
        assert_send_sync_clone::<DistanceMatrix>();
        assert_send_sync_clone::<GraphStats>();
        assert_send_sync_clone::<Interner>();
        assert_send_sync_clone::<Csr<EntityId>>();
        assert_send_sync_clone::<RelGroupedNeighbors>();
        assert_send_sync_clone::<EncodedNeighbors>();
        assert_send_sync_clone::<ShardedGraph>();
        assert_send_sync_clone::<GraphShard>();
        assert_send_sync_clone::<MemoryReport>();
    };
}
