//! The schema graph `Gs(Vs, Es)` derived from an entity graph (Sec. 2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::distance::DistanceMatrix;
use crate::id::{RelTypeId, TypeId};

/// A schema-graph edge: a relationship type together with its aggregate edge
/// count in the underlying entity graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaEdge {
    /// Identifier of the relationship type in the originating entity graph.
    pub rel: RelTypeId,
    /// Surface name of the relationship type (e.g. `Director`).
    pub name: String,
    /// Source entity type `τ`.
    pub src: TypeId,
    /// Destination entity type `τ'`.
    pub dst: TypeId,
    /// Number of entity-graph edges of this relationship type.
    pub edge_count: u64,
}

impl SchemaEdge {
    /// The endpoint of this edge other than `ty`, if `ty` is incident.
    ///
    /// For self-loops (`src == dst == ty`) returns `ty` itself.
    pub fn other_endpoint(&self, ty: TypeId) -> Option<TypeId> {
        if self.src == ty {
            Some(self.dst)
        } else if self.dst == ty {
            Some(self.src)
        } else {
            None
        }
    }
}

/// A schema graph: entity types as vertices (annotated with entity counts) and
/// relationship types as directed edges (annotated with edge counts).
///
/// The schema graph is the working set of all preview-discovery algorithms;
/// it is self-contained (owns its type names) so that scoring and discovery
/// never need to touch the — potentially very large — entity graph, matching
/// the paper's assumption that schema graph and scores are pre-computed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaGraph {
    type_names: Vec<String>,
    type_by_name: HashMap<String, TypeId>,
    entity_counts: Vec<u64>,
    edges: Vec<SchemaEdge>,
    /// For each type, the indices (into `edges`) of all incident edges,
    /// regardless of direction. Self-loops appear once.
    incident: Vec<Vec<usize>>,
}

impl SchemaGraph {
    /// Assembles a schema graph from its parts.
    ///
    /// `type_names[i]` and `entity_counts[i]` describe the type with
    /// `TypeId::new(i)`. `edges` may reference only those types.
    ///
    /// # Panics
    ///
    /// Panics if `type_names` and `entity_counts` have different lengths or an
    /// edge references an out-of-range type.
    pub fn new(type_names: Vec<String>, entity_counts: Vec<u64>, edges: Vec<SchemaEdge>) -> Self {
        assert_eq!(
            type_names.len(),
            entity_counts.len(),
            "type_names and entity_counts must be parallel"
        );
        let n = type_names.len();
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (idx, e) in edges.iter().enumerate() {
            assert!(
                e.src.index() < n && e.dst.index() < n,
                "schema edge references unknown type"
            );
            incident[e.src.index()].push(idx);
            if e.src != e.dst {
                incident[e.dst.index()].push(idx);
            }
        }
        let type_by_name = type_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TypeId::from_usize(i)))
            .collect();
        Self {
            type_names,
            type_by_name,
            entity_counts,
            edges,
            incident,
        }
    }

    /// Number of entity types `|Vs|` (candidate key attributes, `K`).
    #[inline]
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Number of relationship types `|Es|`.
    #[inline]
    pub fn relationship_type_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of an entity type.
    pub fn type_name(&self, ty: TypeId) -> &str {
        &self.type_names[ty.index()]
    }

    /// Looks up an entity type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Number of entities bearing the given type (`Scov(τ)` numerator).
    pub fn entity_count_of(&self, ty: TypeId) -> u64 {
        self.entity_counts[ty.index()]
    }

    /// Total number of entity-graph edges summed over all relationship types.
    pub fn total_edge_count(&self) -> u64 {
        self.edges.iter().map(|e| e.edge_count).sum()
    }

    /// All schema edges.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// A single schema edge by index.
    pub fn edge(&self, idx: usize) -> &SchemaEdge {
        &self.edges[idx]
    }

    /// Indices (into [`edges`](Self::edges)) of the edges incident on `ty`,
    /// in either direction. These are the candidate non-key attributes `Γτ`
    /// for a preview table keyed on `ty`.
    pub fn incident_edges(&self, ty: TypeId) -> &[usize] {
        &self.incident[ty.index()]
    }

    /// Iterates over all entity types.
    pub fn types(&self) -> impl Iterator<Item = TypeId> {
        (0..self.type_names.len()).map(TypeId::from_usize)
    }

    /// Symmetric undirected weight `w_ij` between two types: the number of
    /// entity-graph edges, in either direction, between entities of the two
    /// types (Sec. 3.2, random-walk scoring).
    pub fn undirected_weight(&self, a: TypeId, b: TypeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
            .map(|e| e.edge_count)
            .sum()
    }

    /// Computes the all-pairs undirected shortest-path distance matrix between
    /// entity types, used by the tight/diverse distance constraint.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_schema(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaGraph {
        // FILM(0), FILM ACTOR(1), AWARD(2)
        let edges = vec![
            SchemaEdge {
                rel: RelTypeId::new(0),
                name: "Actor".into(),
                src: TypeId::new(1),
                dst: TypeId::new(0),
                edge_count: 6,
            },
            SchemaEdge {
                rel: RelTypeId::new(1),
                name: "Award Winners".into(),
                src: TypeId::new(1),
                dst: TypeId::new(2),
                edge_count: 2,
            },
        ];
        SchemaGraph::new(
            vec!["FILM".into(), "FILM ACTOR".into(), "AWARD".into()],
            vec![4, 2, 3],
            edges,
        )
    }

    #[test]
    fn basic_accessors() {
        let s = sample();
        assert_eq!(s.type_count(), 3);
        assert_eq!(s.relationship_type_count(), 2);
        assert_eq!(s.type_name(TypeId::new(0)), "FILM");
        assert_eq!(s.type_by_name("AWARD"), Some(TypeId::new(2)));
        assert_eq!(s.type_by_name("NOPE"), None);
        assert_eq!(s.entity_count_of(TypeId::new(0)), 4);
        assert_eq!(s.total_edge_count(), 8);
    }

    #[test]
    fn incident_edges_cover_both_directions() {
        let s = sample();
        // FILM ACTOR is incident to both edges.
        assert_eq!(s.incident_edges(TypeId::new(1)).len(), 2);
        // FILM only to "Actor".
        assert_eq!(s.incident_edges(TypeId::new(0)), &[0]);
        // AWARD only to "Award Winners".
        assert_eq!(s.incident_edges(TypeId::new(2)), &[1]);
    }

    #[test]
    fn undirected_weight_is_symmetric() {
        let s = sample();
        let a = TypeId::new(0);
        let b = TypeId::new(1);
        assert_eq!(s.undirected_weight(a, b), 6);
        assert_eq!(s.undirected_weight(b, a), 6);
        assert_eq!(s.undirected_weight(a, TypeId::new(2)), 0);
    }

    #[test]
    fn other_endpoint() {
        let s = sample();
        let e = s.edge(0);
        assert_eq!(e.other_endpoint(TypeId::new(0)), Some(TypeId::new(1)));
        assert_eq!(e.other_endpoint(TypeId::new(1)), Some(TypeId::new(0)));
        assert_eq!(e.other_endpoint(TypeId::new(2)), None);
    }

    #[test]
    fn self_loop_incident_once() {
        let edges = vec![SchemaEdge {
            rel: RelTypeId::new(0),
            name: "Sequel".into(),
            src: TypeId::new(0),
            dst: TypeId::new(0),
            edge_count: 3,
        }];
        let s = SchemaGraph::new(vec!["FILM".into()], vec![5], edges);
        assert_eq!(s.incident_edges(TypeId::new(0)), &[0]);
        let e = s.edge(0);
        assert_eq!(e.other_endpoint(TypeId::new(0)), Some(TypeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        let _ = SchemaGraph::new(vec!["A".into()], vec![1, 2], vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown type")]
    fn edge_with_unknown_type_panics() {
        let edges = vec![SchemaEdge {
            rel: RelTypeId::new(0),
            name: "x".into(),
            src: TypeId::new(0),
            dst: TypeId::new(5),
            edge_count: 1,
        }];
        let _ = SchemaGraph::new(vec!["A".into()], vec![1], edges);
    }
}
