//! Compressed-sparse-row (CSR) columnar storage for the graph's adjacency
//! indexes.
//!
//! The entity graph is immutable after [`build`](crate::EntityGraphBuilder::build),
//! so every per-entity / per-type / per-relationship-type grouping can be
//! flattened into two parallel arrays: a payload array holding all group
//! members back to back, and an offsets array with one entry per group
//! boundary. Compared to a `Vec<Vec<_>>` this removes one pointer indirection
//! and one heap allocation per group, keeps all payloads of neighbouring
//! groups contiguous in memory (sequential scans over many entities walk a
//! single flat array), and makes every group lookup a borrowed, zero-copy
//! slice.
//!
//! [`RelGroupedNeighbors`] extends the same idea one level down: each
//! entity's neighbors are pre-grouped at build time into sorted, de-duplicated
//! segments keyed by relationship type, so the hot
//! [`neighbors_via`](crate::EntityGraph::neighbors_via) lookup is a binary
//! search over an entity's segment directory followed by a borrowed slice of
//! the shared payload — no scanning, filtering, sorting or allocation at
//! query time.

use serde::{Deserialize, Serialize};

use crate::id::{EntityId, RelTypeId};

/// A flattened list-of-lists: group `i`'s payload is
/// `data[offsets[i] .. offsets[i + 1]]`.
///
/// Offsets are `u32` because every identifier space in the workspace is
/// `u32`-backed (see [`EntityId`], [`RelTypeId`] and their siblings); the
/// payload of all groups combined is bounded by the number of entities or
/// edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr<T> {
    /// `group_count() + 1` monotone boundaries into `data`.
    offsets: Vec<u32>,
    /// All group payloads, back to back, in group order.
    data: Vec<T>,
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            data: Vec::new(),
        }
    }
}

impl<T: Copy> Csr<T> {
    /// Builds a CSR from `(group, item)` pairs via a two-pass counting sort.
    ///
    /// Items keep their relative order within each group (the sort is
    /// stable), which preserves the insertion-order guarantees the previous
    /// `Vec<Vec<_>>` indexes provided.
    ///
    /// # Panics
    ///
    /// Panics if a pair references a group `>= group_count`.
    pub fn from_pairs(group_count: usize, pairs: &[(usize, T)]) -> Self {
        let mut counts = vec![0u32; group_count];
        for &(group, _) in pairs {
            counts[group] += 1;
        }
        let mut offsets = Vec::with_capacity(group_count + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &c in &counts {
            running += c;
            offsets.push(running);
        }
        // Fill with per-group cursors; `counts` is reused as the cursor array.
        counts.copy_from_slice(&offsets[..group_count]);
        // Prefill with the first payload value instead of `Option<T>`: every
        // slot is overwritten exactly once below (the offsets cover
        // `pairs.len()` slots and each pair advances one cursor), and the
        // plain-`T` array skips the discriminant, halving the scatter pass's
        // working set for `u32` payloads at million-edge scale.
        let mut data: Vec<T> = match pairs.first() {
            Some(&(_, seed)) => vec![seed; pairs.len()],
            None => Vec::new(),
        };
        for &(group, item) in pairs {
            let slot = counts[group] as usize;
            data[slot] = item;
            counts[group] += 1;
        }
        Self { offsets, data }
    }
}

impl<T> Csr<T> {
    /// Assembles a CSR directly from its offset and payload arrays.
    ///
    /// Used by the delta splice path, which produces both arrays in one pass
    /// over the previous version's CSR instead of re-running the counting
    /// sort over all pairs.
    ///
    /// # Panics
    ///
    /// Debug-panics if the offsets are not monotone or do not cover `data`.
    pub(crate) fn from_raw_parts(offsets: Vec<u32>, data: Vec<T>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(
            *offsets.last().expect("non-empty offsets") as usize,
            data.len()
        );
        Self { offsets, data }
    }

    /// Number of groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Borrowed payload of group `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= group_count()`.
    #[inline]
    pub fn slice(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total payload length over all groups.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Heap bytes of the offset and payload arrays (element sizes, not
    /// allocator capacity) — the unit the sharding layer's
    /// [`MemoryReport`](crate::MemoryReport) accounts in.
    pub fn heap_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u32>()) as u64
            + (self.data.len() * std::mem::size_of::<T>()) as u64
    }
}

/// Per-entity neighbor sets, pre-grouped by relationship type.
///
/// Layout: entity `v` owns the segment directory range
/// `seg_offsets[v] .. seg_offsets[v + 1]`. Each segment `j` in that range
/// covers one relationship type `seg_rels[j]` and the payload slice
/// `payload[start_of(j) .. seg_ends[j]]`, where `start_of(j)` is the previous
/// segment's end (the payload is written contiguously, so segment boundaries
/// chain across entities). Within an entity the segments are sorted by
/// relationship type and each payload slice is sorted and de-duplicated —
/// attribute values are sets (Def. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelGroupedNeighbors {
    /// `entity_count + 1` boundaries into the segment directory.
    seg_offsets: Vec<u32>,
    /// Relationship type of each segment, sorted within an entity's range.
    seg_rels: Vec<RelTypeId>,
    /// Exclusive payload end of each segment; the start is the previous
    /// segment's end (`0` for the first segment overall).
    seg_ends: Vec<u32>,
    /// All neighbor sets, back to back.
    payload: Vec<EntityId>,
}

impl RelGroupedNeighbors {
    /// Builds the grouped index from per-entity `(rel, neighbor)` pairs.
    ///
    /// `pairs_of(v)` must yield the (unsorted, possibly duplicated) pairs of
    /// entity `v`; sorting, de-duplication and segmentation happen here, once,
    /// at build time.
    pub fn build<F>(entity_count: usize, mut pairs_of: F) -> Self
    where
        F: FnMut(usize, &mut Vec<(RelTypeId, EntityId)>),
    {
        let mut seg_offsets = Vec::with_capacity(entity_count + 1);
        let mut seg_rels = Vec::new();
        let mut seg_ends: Vec<u32> = Vec::new();
        let mut payload: Vec<EntityId> = Vec::new();
        let mut scratch: Vec<(RelTypeId, EntityId)> = Vec::new();
        seg_offsets.push(0);
        for v in 0..entity_count {
            scratch.clear();
            pairs_of(v, &mut scratch);
            scratch.sort_unstable();
            scratch.dedup();
            let mut current_rel = None;
            for &(rel, neighbor) in &scratch {
                if current_rel != Some(rel) {
                    current_rel = Some(rel);
                    seg_rels.push(rel);
                    seg_ends.push(payload.len() as u32);
                }
                payload.push(neighbor);
                *seg_ends.last_mut().expect("segment just pushed") = payload.len() as u32;
            }
            seg_offsets.push(seg_rels.len() as u32);
        }
        Self {
            seg_offsets,
            seg_rels,
            seg_ends,
            payload,
        }
    }

    /// The sorted, de-duplicated neighbors of `entity` through `rel`, as a
    /// borrowed slice. Empty if the entity has no such neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range.
    #[inline]
    pub fn neighbors(&self, entity: usize, rel: RelTypeId) -> &[EntityId] {
        let lo = self.seg_offsets[entity] as usize;
        let hi = self.seg_offsets[entity + 1] as usize;
        match self.seg_rels[lo..hi].binary_search(&rel) {
            Ok(found) => {
                let j = lo + found;
                let start = if j == 0 {
                    0
                } else {
                    self.seg_ends[j - 1] as usize
                };
                &self.payload[start..self.seg_ends[j] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Number of entities indexed.
    #[inline]
    pub fn entity_count(&self) -> usize {
        self.seg_offsets.len() - 1
    }

    /// Total number of stored (entity, relationship type, neighbor) triples.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.payload.len()
    }

    /// Number of stored (entity, relationship type) segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.seg_rels.len()
    }

    /// Iterates an entity's segments in relationship-type order, yielding
    /// each type together with its sorted, de-duplicated neighbor slice.
    ///
    /// This is the sharding layer's bulk-encode input: one pass over the
    /// segment directory, no per-segment binary search.
    ///
    /// # Panics
    ///
    /// Panics if `entity` is out of range.
    pub fn segments(&self, entity: usize) -> impl Iterator<Item = (RelTypeId, &[EntityId])> {
        let lo = self.seg_offsets[entity] as usize;
        let hi = self.seg_offsets[entity + 1] as usize;
        (lo..hi).map(move |j| {
            let start = if j == 0 {
                0
            } else {
                self.seg_ends[j - 1] as usize
            };
            (
                self.seg_rels[j],
                &self.payload[start..self.seg_ends[j] as usize],
            )
        })
    }

    /// Heap bytes split as `(payload_bytes, total_bytes)`: the raw neighbor
    /// payload versus payload plus all directory arrays (element sizes, not
    /// allocator capacity). The sharding layer's
    /// [`MemoryReport`](crate::MemoryReport) compares its encoded storage
    /// against these numbers.
    pub fn heap_bytes(&self) -> (u64, u64) {
        let payload = (self.payload.len() * std::mem::size_of::<EntityId>()) as u64;
        let directory = ((self.seg_offsets.len() + self.seg_ends.len())
            * std::mem::size_of::<u32>()) as u64
            + (self.seg_rels.len() * std::mem::size_of::<RelTypeId>()) as u64;
        (payload, payload + directory)
    }
}

/// Incremental constructor for [`RelGroupedNeighbors`], used by the delta
/// splice path: entities are appended one at a time, either by copying (and
/// id-remapping) an entity's segments from a previous version of the index,
/// or by re-segmenting a fresh pair list for entities the delta touched.
///
/// Copying is bit-compatible with a from-scratch
/// [`build`](RelGroupedNeighbors::build): the entity remap applied to an
/// untouched entity is strictly monotone, so sortedness and de-duplication of
/// the copied payload are preserved verbatim.
pub(crate) struct NeighborSplicer {
    seg_offsets: Vec<u32>,
    seg_rels: Vec<RelTypeId>,
    seg_ends: Vec<u32>,
    payload: Vec<EntityId>,
}

impl NeighborSplicer {
    /// Creates a splicer with capacity hints for the expected entity count
    /// and total payload length.
    pub(crate) fn new(entity_count_hint: usize, payload_hint: usize) -> Self {
        let mut seg_offsets = Vec::with_capacity(entity_count_hint + 1);
        seg_offsets.push(0);
        Self {
            seg_offsets,
            seg_rels: Vec::new(),
            seg_ends: Vec::new(),
            payload: Vec::with_capacity(payload_hint),
        }
    }

    /// Appends the next entity by copying `old_entity`'s segments from `old`,
    /// remapping every neighbor id through `remap` (`remap[old] = new raw
    /// id`). All neighbors of a copied entity must survive the delta.
    pub(crate) fn copy_remapped(
        &mut self,
        old: &RelGroupedNeighbors,
        old_entity: usize,
        remap: &[u32],
    ) {
        let lo = old.seg_offsets[old_entity] as usize;
        let hi = old.seg_offsets[old_entity + 1] as usize;
        for j in lo..hi {
            let start = if j == 0 {
                0
            } else {
                old.seg_ends[j - 1] as usize
            };
            let end = old.seg_ends[j] as usize;
            self.seg_rels.push(old.seg_rels[j]);
            for neighbor in &old.payload[start..end] {
                let mapped = remap[neighbor.index()];
                debug_assert_ne!(
                    mapped,
                    u32::MAX,
                    "a copied (untouched) entity cannot neighbor a removed entity"
                );
                self.payload.push(EntityId::new(mapped));
            }
            self.seg_ends.push(self.payload.len() as u32);
        }
        self.seg_offsets.push(self.seg_rels.len() as u32);
    }

    /// Appends the next entity by copying `old_entity`'s segments verbatim —
    /// the fast path when the delta removed no entities, so the entity-id
    /// remap is the identity and neighbor payloads can be block-copied.
    pub(crate) fn copy_verbatim(&mut self, old: &RelGroupedNeighbors, old_entity: usize) {
        let lo = old.seg_offsets[old_entity] as usize;
        let hi = old.seg_offsets[old_entity + 1] as usize;
        if lo < hi {
            let payload_start = if lo == 0 {
                0
            } else {
                old.seg_ends[lo - 1] as usize
            };
            let payload_end = old.seg_ends[hi - 1] as usize;
            // Segment ends are absolute offsets; rebase them onto this
            // splicer's payload cursor.
            let base = self.payload.len() as i64 - payload_start as i64;
            self.seg_rels.extend_from_slice(&old.seg_rels[lo..hi]);
            self.seg_ends.extend(
                old.seg_ends[lo..hi]
                    .iter()
                    .map(|&end| (i64::from(end) + base) as u32),
            );
            self.payload
                .extend_from_slice(&old.payload[payload_start..payload_end]);
        }
        self.seg_offsets.push(self.seg_rels.len() as u32);
    }

    /// Appends the next entity from its raw `(rel, neighbor)` pairs, sorting,
    /// de-duplicating and segmenting them exactly as
    /// [`build`](RelGroupedNeighbors::build) does.
    pub(crate) fn push_pairs(&mut self, scratch: &mut Vec<(RelTypeId, EntityId)>) {
        scratch.sort_unstable();
        scratch.dedup();
        let mut current_rel = None;
        for &(rel, neighbor) in scratch.iter() {
            if current_rel != Some(rel) {
                current_rel = Some(rel);
                self.seg_rels.push(rel);
                self.seg_ends.push(self.payload.len() as u32);
            }
            self.payload.push(neighbor);
            *self.seg_ends.last_mut().expect("segment just pushed") = self.payload.len() as u32;
        }
        self.seg_offsets.push(self.seg_rels.len() as u32);
    }

    /// Freezes the splicer into the finished index.
    pub(crate) fn finish(self) -> RelGroupedNeighbors {
        RelGroupedNeighbors {
            seg_offsets: self.seg_offsets,
            seg_rels: self.seg_rels,
            seg_ends: self.seg_ends,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_pairs_groups_and_preserves_order() {
        let pairs = [(1usize, 10u32), (0, 20), (1, 30), (2, 40), (1, 50)];
        let csr = Csr::from_pairs(4, &pairs);
        assert_eq!(csr.group_count(), 4);
        assert_eq!(csr.slice(0), &[20]);
        assert_eq!(csr.slice(1), &[10, 30, 50]);
        assert_eq!(csr.slice(2), &[40]);
        assert_eq!(csr.slice(3), &[] as &[u32]);
        assert_eq!(csr.total_len(), 5);
    }

    #[test]
    fn csr_empty_and_default() {
        let csr: Csr<u32> = Csr::from_pairs(0, &[]);
        assert_eq!(csr.group_count(), 0);
        assert_eq!(csr.total_len(), 0);
        let def: Csr<u32> = Csr::default();
        assert_eq!(def.group_count(), 0);
    }

    #[test]
    fn grouped_neighbors_sorts_dedups_and_segments() {
        let r0 = RelTypeId::new(0);
        let r1 = RelTypeId::new(1);
        let e = EntityId::new;
        // Entity 0: r1 -> {5, 3, 3}, r0 -> {7}. Entity 1: nothing.
        // Entity 2: r0 -> {1}.
        let grouped = RelGroupedNeighbors::build(3, |v, out| match v {
            0 => out.extend([(r1, e(5)), (r1, e(3)), (r0, e(7)), (r1, e(3))]),
            2 => out.push((r0, e(1))),
            _ => {}
        });
        assert_eq!(grouped.neighbors(0, r0), &[e(7)]);
        assert_eq!(grouped.neighbors(0, r1), &[e(3), e(5)]);
        assert_eq!(grouped.neighbors(1, r0), &[] as &[EntityId]);
        assert_eq!(grouped.neighbors(1, r1), &[] as &[EntityId]);
        assert_eq!(grouped.neighbors(2, r0), &[e(1)]);
        assert_eq!(grouped.neighbors(2, r1), &[] as &[EntityId]);
        assert_eq!(grouped.entity_count(), 3);
        assert_eq!(grouped.total_len(), 4);
    }

    #[test]
    fn splicer_copy_and_push_match_build() {
        let r0 = RelTypeId::new(0);
        let r1 = RelTypeId::new(1);
        let e = EntityId::new;
        let pairs: [Vec<(RelTypeId, EntityId)>; 3] = [
            vec![(r1, e(5)), (r1, e(3)), (r0, e(7)), (r1, e(3))],
            vec![],
            vec![(r0, e(1))],
        ];
        let built = RelGroupedNeighbors::build(3, |v, out| out.extend(pairs[v].iter().copied()));
        // Identity remap: copy every entity verbatim.
        let identity: Vec<u32> = (0..8).collect();
        let mut splicer = NeighborSplicer::new(3, built.total_len());
        splicer.copy_remapped(&built, 0, &identity);
        let mut scratch = pairs[1].clone();
        splicer.push_pairs(&mut scratch);
        splicer.copy_remapped(&built, 2, &identity);
        assert_eq!(splicer.finish(), built);
    }

    #[test]
    fn grouped_neighbors_unknown_rel_is_empty() {
        let grouped = RelGroupedNeighbors::build(1, |_, out| {
            out.push((RelTypeId::new(3), EntityId::new(0)));
        });
        assert!(grouped.neighbors(0, RelTypeId::new(2)).is_empty());
        assert!(grouped.neighbors(0, RelTypeId::new(4)).is_empty());
        assert_eq!(grouped.neighbors(0, RelTypeId::new(3)).len(), 1);
    }
}
