//! A small string interner mapping strings to dense `u32`-backed identifiers.

use std::collections::HashMap;

/// Interns strings and hands out dense indices in insertion order.
///
/// The interner is generic over the identifier newtype so that entity names,
/// entity-type names and relationship-type surface names each live in their
/// own identifier space and cannot be mixed up at compile time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    lookup: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with the given capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            lookup: HashMap::with_capacity(capacity),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Interns `s`, returning its dense index. Re-interning an existing string
    /// returns the original index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.lookup.get(s) {
            return idx;
        }
        let idx = u32::try_from(self.strings.len()).expect("interner exceeds u32::MAX entries");
        self.lookup.insert(s.to_owned(), idx);
        self.strings.push(s.to_owned());
        idx
    }

    /// Returns the index of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Resolves an index back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not produced by this interner.
    pub fn resolve(&self, idx: u32) -> &str {
        &self.strings[idx as usize]
    }

    /// Resolves an index back to its string, returning `None` if out of range.
    pub fn try_resolve(&self, idx: u32) -> Option<&str> {
        self.strings.get(idx as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all interned strings in index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("FILM");
        let b = i.intern("FILM");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.resolve(1), "b");
    }

    #[test]
    fn get_returns_none_for_unknown() {
        let mut i = Interner::new();
        i.intern("x");
        assert_eq!(i.get("x"), Some(0));
        assert_eq!(i.get("y"), None);
    }

    #[test]
    fn try_resolve_handles_out_of_range() {
        let mut i = Interner::new();
        i.intern("x");
        assert_eq!(i.try_resolve(0), Some("x"));
        assert_eq!(i.try_resolve(1), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        for s in ["one", "two", "three"] {
            i.intern(s);
        }
        let collected: Vec<&str> = i.iter().collect();
        assert_eq!(collected, vec!["one", "two", "three"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
