//! Request-scoped trace trees and tail-based retention.
//!
//! A [`TraceId`] is minted at service ingress from the request sequence
//! number — deterministically, never from ambient randomness (preview-lint's
//! `ambient-randomness` rule guards the minting site) — and carried with the
//! job into the worker. While a worker serves the request, every span it
//! opens is linked to its parent span, so a completed request yields a
//! reconstructable [`TraceTree`]: queue-wait → cache-lookup → discovery →
//! algorithm → response, with the free-form span attributes (candidate
//! counts, best-first nodes expanded) attached to the tree nodes.
//!
//! Retention is **tail-based**: keeping every tree would cost memory
//! proportional to traffic, so the bounded [`TraceStore`] only retains trees
//! whose request was slow, errored, panicked, or explicitly sampled 1-in-N
//! ([`RetainReason`] records which — a request can qualify several ways and
//! is still retained exactly once).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

use crate::json::write_json_string;
use crate::stage::Stage;

/// The span id every trace root uses ([`TraceSpan::parent_id`] `0` marks
/// the root itself).
pub(crate) const ROOT_SPAN_ID: u32 = 1;

/// A request-scoped trace identifier.
///
/// Minted deterministically from the service's request sequence number via
/// [`TraceId::from_seq`] — the same request order always yields the same
/// ids, and `0` is reserved as "no trace" in packed span events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The id for the request with sequence number `seq` (ids are `seq + 1`
    /// so that `0` never names a real trace).
    pub fn from_seq(seq: u64) -> TraceId {
        TraceId(seq.wrapping_add(1).max(1))
    }

    /// Reconstructs an id from its raw value; `None` for the reserved `0`.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }

    /// The raw (non-zero) id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The explicit handoff passed across an orchestration boundary (worker →
/// fork-join pool call site) so spans opened around a parallel section
/// parent correctly without relying on the thread-local span stack.
///
/// Spans still never fire *inside* pool closures (the `trace-in-fjpool-
/// closure` lint pins this), so the context is captured before the pool
/// call and consumed by [`enter_in_context`](crate::enter_in_context) at
/// the orchestration level around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The active trace.
    pub trace: TraceId,
    /// The span id new child spans should parent to.
    pub parent: u32,
}

/// How a worker's request ended, reported when the trace is finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The request completed successfully.
    Ok,
    /// The request ended in a typed service error.
    Error,
    /// The request panicked and was caught at the worker boundary.
    Panic,
}

/// Why a trace tree (and, for slow/panic, the matching flight dump) was
/// retained. A request can qualify for several reasons; it is retained once
/// with all of them recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RetainReason {
    /// The request (or one of its stages) exceeded a configured threshold.
    Slow,
    /// The request returned a typed error.
    Error,
    /// The request panicked.
    Panic,
    /// The request was picked by 1-in-N head sampling.
    Sampled,
}

impl RetainReason {
    /// Stable name used in snapshot JSON and joined dump reasons.
    pub const fn name(self) -> &'static str {
        match self {
            RetainReason::Slow => "slow",
            RetainReason::Error => "error",
            RetainReason::Panic => "panic",
            RetainReason::Sampled => "sampled",
        }
    }
}

/// One completed span inside a [`TraceTree`], with its parent link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// This span's id within its trace (the root is always `1`).
    pub span_id: u32,
    /// The parent span's id; `0` marks the root.
    pub parent_id: u32,
    /// The stage this span measured.
    pub stage: Stage,
    /// Small per-process id of the thread that ran the span.
    pub thread: u32,
    /// Span start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Free-form attribute (candidate count, nodes expanded, ...).
    pub attr: u64,
}

impl TraceSpan {
    /// Renders the span as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"span_id\":{},\"parent_id\":{},\"stage\":\"{}\",\"thread\":{},\
             \"start_us\":{},\"duration_us\":{},\"attr\":{}}}",
            self.span_id,
            self.parent_id,
            self.stage.name(),
            self.thread,
            self.start_us,
            self.duration_us,
            self.attr
        )
    }
}

/// A retained trace: every span of one request, with parent links, plus why
/// it was kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The request's trace id.
    pub trace: TraceId,
    /// Every reason this tree qualified for retention, in [`RetainReason`]
    /// order (a slow *and* panicked request carries both, retained once).
    pub reasons: Vec<RetainReason>,
    /// Free-form context from the worker (graph name, latency, message).
    pub detail: String,
    /// All spans of the request, in completion order; the root (the whole
    /// request) is always last.
    pub spans: Vec<TraceSpan>,
}

impl TraceTree {
    /// The root span (the whole request), if the tree is well-formed.
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent_id == 0)
    }

    /// Direct children of the span with id `parent_id`, in completion order.
    pub fn children(&self, parent_id: u32) -> Vec<&TraceSpan> {
        self.spans
            .iter()
            .filter(|s| s.parent_id == parent_id && s.parent_id != s.span_id)
            .collect()
    }

    /// Renders the tree as a JSON object (the same shape `obs-bench` and
    /// the snapshot exporter emit).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 128);
        out.push_str(&format!("{{\"trace\":\"{}\",\"reasons\":[", self.trace));
        for (index, reason) in self.reasons.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", reason.name()));
        }
        out.push_str("],\"detail\":");
        write_json_string(&mut out, &self.detail);
        out.push_str(",\"spans\":[");
        for (index, span) in self.spans.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&span.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// A bounded store of retained [`TraceTree`]s (tail-based sampling output).
///
/// Holding the lock only rotates a bounded deque, and poisoning is
/// recovered from — retention runs on the worker's panic-handling path,
/// where a second panic would abort the process.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    trees: Mutex<VecDeque<TraceTree>>,
}

impl TraceStore {
    /// A store retaining at most `capacity` trees (clamped to ≥ 1).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            trees: Mutex::new(VecDeque::new()),
        }
    }

    /// Maximum number of retained trees.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retains `tree`, discarding the oldest retained tree when full.
    pub fn retain(&self, tree: TraceTree) {
        let mut trees = self.trees.lock().unwrap_or_else(PoisonError::into_inner);
        if trees.len() >= self.capacity {
            trees.pop_front();
        }
        trees.push_back(tree);
    }

    /// Retained trees, oldest first.
    pub fn trees(&self) -> Vec<TraceTree> {
        self.trees
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        self.trees
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no tree has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-thread state of the trace currently being served: a span-id
/// allocator, the open-span stack (for parent links), and the completed
/// spans accumulated so far.
#[derive(Debug)]
pub(crate) struct ActiveTrace {
    pub(crate) trace: TraceId,
    next_id: u32,
    stack: Vec<u32>,
    pub(crate) spans: Vec<TraceSpan>,
}

impl ActiveTrace {
    pub(crate) fn new(trace: TraceId) -> ActiveTrace {
        ActiveTrace {
            trace,
            // Ids 0 (no parent) and 1 (root) are reserved.
            next_id: ROOT_SPAN_ID + 1,
            stack: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Allocates a span id and resolves its parent: `explicit_parent` when
    /// given (the [`TraceContext`] handoff), else the innermost open span,
    /// else the root. The new span is pushed onto the open stack.
    pub(crate) fn open(&mut self, explicit_parent: Option<u32>) -> (u32, u32) {
        let id = self.next_id;
        self.next_id = self.next_id.saturating_add(1);
        let parent =
            explicit_parent.unwrap_or_else(|| self.stack.last().copied().unwrap_or(ROOT_SPAN_ID));
        self.stack.push(id);
        (id, parent)
    }

    /// The span id new children should parent to right now.
    pub(crate) fn current_parent(&self) -> u32 {
        self.stack.last().copied().unwrap_or(ROOT_SPAN_ID)
    }

    /// Records a completed span and pops it off the open stack. Spans close
    /// LIFO on their thread, but an unwind may skip intermediate guards, so
    /// the stack is searched from the top.
    pub(crate) fn close(&mut self, span: TraceSpan) {
        if let Some(position) = self.stack.iter().rposition(|&id| id == span.span_id) {
            self.stack.truncate(position);
        }
        self.spans.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(span_id: u32, parent_id: u32, stage: Stage) -> TraceSpan {
        TraceSpan {
            span_id,
            parent_id,
            stage,
            thread: 0,
            start_us: 0,
            duration_us: 10,
            attr: 0,
        }
    }

    #[test]
    fn trace_ids_are_sequence_derived_and_never_zero() {
        assert_eq!(TraceId::from_seq(0).as_u64(), 1);
        assert_eq!(TraceId::from_seq(41).as_u64(), 42);
        assert_eq!(TraceId::from_seq(u64::MAX).as_u64(), 1);
        assert_eq!(TraceId::from_raw(0), None);
        assert_eq!(TraceId::from_raw(7), Some(TraceId::from_seq(6)));
        assert_eq!(format!("{}", TraceId::from_seq(30)), "000000000000001f");
    }

    #[test]
    fn active_trace_allocates_parents_from_the_open_stack() {
        let mut active = ActiveTrace::new(TraceId::from_seq(0));
        let (outer, outer_parent) = active.open(None);
        assert_eq!((outer, outer_parent), (2, ROOT_SPAN_ID));
        let (inner, inner_parent) = active.open(None);
        assert_eq!((inner, inner_parent), (3, outer));
        active.close(span(inner, inner_parent, Stage::Algorithm));
        // With the inner span closed, new spans parent to the outer one.
        let (next, next_parent) = active.open(None);
        assert_eq!(next_parent, outer);
        active.close(span(next, next_parent, Stage::CandidateGen));
        active.close(span(outer, outer_parent, Stage::Discovery));
        assert_eq!(active.current_parent(), ROOT_SPAN_ID);
        assert_eq!(active.spans.len(), 3);
    }

    #[test]
    fn explicit_context_parent_overrides_the_stack() {
        let mut active = ActiveTrace::new(TraceId::from_seq(0));
        let (outer, _) = active.open(None);
        let (_, parent) = active.open(Some(ROOT_SPAN_ID));
        assert_eq!(parent, ROOT_SPAN_ID, "context beats the open stack");
        let _ = outer;
    }

    #[test]
    fn tree_navigation_finds_root_and_children() {
        let tree = TraceTree {
            trace: TraceId::from_seq(4),
            reasons: vec![RetainReason::Slow, RetainReason::Panic],
            detail: "graph=g".to_string(),
            spans: vec![
                span(3, 2, Stage::Algorithm),
                span(2, 1, Stage::Discovery),
                span(4, 1, Stage::Response),
                span(1, 0, Stage::Request),
            ],
        };
        assert_eq!(tree.root().unwrap().stage, Stage::Request);
        let children: Vec<Stage> = tree.children(1).iter().map(|s| s.stage).collect();
        assert_eq!(children, vec![Stage::Discovery, Stage::Response]);
        let json = tree.to_json();
        assert!(json.contains("\"trace\":\"0000000000000005\""));
        assert!(json.contains("\"reasons\":[\"slow\",\"panic\"]"));
        assert!(json.contains("\"stage\":\"request\""));
    }

    #[test]
    fn store_is_bounded_and_keeps_the_newest_trees() {
        let store = TraceStore::new(2);
        for seq in 0..5 {
            store.retain(TraceTree {
                trace: TraceId::from_seq(seq),
                reasons: vec![RetainReason::Sampled],
                detail: String::new(),
                spans: Vec::new(),
            });
        }
        let trees = store.trees();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, TraceId::from_seq(3));
        assert_eq!(trees[1].trace, TraceId::from_seq(4));
        assert!(!store.is_empty());
        assert_eq!(TraceStore::new(0).capacity(), 1);
    }
}
