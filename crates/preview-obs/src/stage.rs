//! The fixed stage and counter taxonomy instrumented across the stack.
//!
//! Stages are a closed enum rather than free-form strings so that recording
//! a span costs an array index instead of a hash lookup, and so the snapshot
//! schema (and the `obs-bench --check` validator) can enumerate every stage
//! that must be present.

/// A named pipeline stage whose duration is recorded by spans.
///
/// The serving path nests as: [`Stage::Request`] → [`Stage::QueueWait`] /
/// [`Stage::CacheLookup`] / [`Stage::Discovery`] → ([`Stage::CandidateGen`],
/// [`Stage::EntropyScoring`], [`Stage::Algorithm`], [`Stage::Materialize`])
/// → [`Stage::Response`]. The update path records [`Stage::Publish`] →
/// [`Stage::DeltaApply`] / [`Stage::ShardSplice`] / [`Stage::Rescore`], and
/// initial sharding records [`Stage::ShardedBuild`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// A whole request, from dequeue to reply.
    Request = 0,
    /// Time a job waited in the submission queue before a worker picked it up.
    QueueWait = 1,
    /// Preview-cache probe (hit or miss).
    CacheLookup = 2,
    /// Full preview discovery (scoring + algorithm + materialisation).
    Discovery = 3,
    /// Candidate key/non-key list generation.
    CandidateGen = 4,
    /// Entropy scoring of non-key candidates.
    EntropyScoring = 5,
    /// The selection algorithm (dynamic programming / greedy / brute force).
    Algorithm = 6,
    /// Materialising the selected preview into rows.
    Materialize = 7,
    /// Serialising and sending the reply.
    Response = 8,
    /// Logical graph delta application (CSR splice).
    DeltaApply = 9,
    /// Sharded re-splice of a delta across shards.
    ShardSplice = 10,
    /// Initial sharded build from a logical graph.
    ShardedBuild = 11,
    /// Incremental rescoring of affected relationship types.
    Rescore = 12,
    /// A whole `publish_delta` call in the registry.
    Publish = 13,
    /// Best-first branch-and-bound search (a [`Stage::Algorithm`]-child span
    /// on the discovery path; the attribute carries nodes expanded).
    BestFirstSearch = 14,
}

/// Number of distinct stages.
pub const STAGE_COUNT: usize = 15;

impl Stage {
    /// Every stage, in `repr` order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Request,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::Discovery,
        Stage::CandidateGen,
        Stage::EntropyScoring,
        Stage::Algorithm,
        Stage::Materialize,
        Stage::Response,
        Stage::DeltaApply,
        Stage::ShardSplice,
        Stage::ShardedBuild,
        Stage::Rescore,
        Stage::Publish,
        Stage::BestFirstSearch,
    ];

    /// Stable snake_case name used in snapshot JSON and flight dumps.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::Discovery => "discovery",
            Stage::CandidateGen => "candidate_gen",
            Stage::EntropyScoring => "entropy_scoring",
            Stage::Algorithm => "algorithm",
            Stage::Materialize => "materialize",
            Stage::Response => "response",
            Stage::DeltaApply => "delta_apply",
            Stage::ShardSplice => "shard_splice",
            Stage::ShardedBuild => "sharded_build",
            Stage::Rescore => "rescore",
            Stage::Publish => "publish",
            Stage::BestFirstSearch => "best_first_search",
        }
    }

    /// The stage with `repr` value `raw`, if in range.
    pub const fn from_raw(raw: u8) -> Option<Stage> {
        if (raw as usize) < STAGE_COUNT {
            Some(Stage::ALL[raw as usize])
        } else {
            None
        }
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Counter {
    /// `publish_delta` calls that registered a new version.
    Publishes = 0,
    /// Publishes that took the identity splice fast path.
    PublishSplices = 1,
    /// Publishes that fell back to a full reshard.
    PublishFullReshards = 2,
    /// Total shards rebuilt across all publishes.
    PublishTouchedShards = 3,
    /// Cache entries carried forward across publishes.
    CacheCarried = 4,
    /// Cache entries invalidated by publishes.
    CacheInvalidated = 5,
    /// Flight-recorder dumps triggered by worker panics.
    PanicDumps = 6,
    /// Flight-recorder dumps triggered by slow requests.
    SlowDumps = 7,
    /// Prefix nodes expanded by best-first discovery searches.
    NodesExpanded = 8,
    /// Prefix subtrees discarded without expansion by best-first searches
    /// (bound cutoffs plus infeasibility).
    NodesPruned = 9,
    /// Best-first discards attributable to the admissible bound failing to
    /// beat the incumbent (a subset of [`Counter::NodesPruned`]).
    BoundCutoffs = 10,
}

/// Number of distinct counters.
pub const COUNTER_COUNT: usize = 11;

impl Counter {
    /// Every counter, in `repr` order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Publishes,
        Counter::PublishSplices,
        Counter::PublishFullReshards,
        Counter::PublishTouchedShards,
        Counter::CacheCarried,
        Counter::CacheInvalidated,
        Counter::PanicDumps,
        Counter::SlowDumps,
        Counter::NodesExpanded,
        Counter::NodesPruned,
        Counter::BoundCutoffs,
    ];

    /// Stable snake_case name used in snapshot JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::Publishes => "publishes",
            Counter::PublishSplices => "publish_splices",
            Counter::PublishFullReshards => "publish_full_reshards",
            Counter::PublishTouchedShards => "publish_touched_shards",
            Counter::CacheCarried => "cache_carried",
            Counter::CacheInvalidated => "cache_invalidated",
            Counter::PanicDumps => "panic_dumps",
            Counter::SlowDumps => "slow_dumps",
            Counter::NodesExpanded => "nodes_expanded",
            Counter::NodesPruned => "nodes_pruned",
            Counter::BoundCutoffs => "bound_cutoffs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_all_matches_repr_order_and_names_are_unique() {
        for (index, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, index);
            assert_eq!(Stage::from_raw(index as u8), Some(*stage));
        }
        assert_eq!(Stage::from_raw(STAGE_COUNT as u8), None);
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }

    #[test]
    fn counter_all_matches_repr_order_and_names_are_unique() {
        for (index, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(*counter as usize, index);
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }
}
