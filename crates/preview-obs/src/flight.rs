//! The flight recorder: a fixed-capacity lock-free ring of recent span
//! events, readable at any time without stopping writers.
//!
//! Every completed span is published into the ring with a per-slot seqlock
//! built from safe atomics (the workspace forbids `unsafe`): the writer
//! claims a slot by a single `fetch_add` on the global cursor, marks the
//! slot's sequence odd (write in progress), stores the six payload words,
//! then marks it even. A reader snapshots the sequence, copies the words,
//! and re-checks the sequence — a changed or odd sequence means a torn read
//! and the slot is skipped. A writer that laps the ring while a reader is
//! mid-copy is likewise detected by the sequence check. The ring is a
//! diagnostic buffer: under extreme contention a reader may drop a slot, but
//! it never observes a torn event and never blocks a writer.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::stage::Stage;

/// One completed span, as stored in (and read back from) the flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The stage this span measured.
    pub stage: Stage,
    /// Nesting depth at record time (0 = root span on its thread).
    pub depth: u8,
    /// Small per-process thread id (not the OS tid).
    pub thread: u32,
    /// Span start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Free-form attribute (e.g. a rel-type id or candidate count).
    pub attr: u64,
    /// Raw trace id of the request this span belonged to; `0` when the span
    /// ran outside any request trace (publish path, bare attachment).
    pub trace: u64,
    /// This span's id within its trace (`0` when untraced).
    pub span_id: u32,
    /// The parent span's id within its trace (`0` = root or untraced).
    pub parent_span: u32,
}

impl SpanEvent {
    fn pack_word0(&self) -> u64 {
        (self.stage as u64) | (u64::from(self.depth) << 8) | (u64::from(self.thread) << 16)
    }

    fn pack_word5(&self) -> u64 {
        u64::from(self.span_id) | (u64::from(self.parent_span) << 32)
    }

    fn unpack(words: [u64; 6]) -> Option<SpanEvent> {
        let stage = Stage::from_raw((words[0] & 0xff) as u8)?;
        Some(SpanEvent {
            stage,
            depth: ((words[0] >> 8) & 0xff) as u8,
            thread: (words[0] >> 16) as u32,
            start_us: words[1],
            duration_us: words[2],
            attr: words[3],
            trace: words[4],
            span_id: (words[5] & 0xffff_ffff) as u32,
            parent_span: (words[5] >> 32) as u32,
        })
    }

    /// Renders the event as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stage\":\"{}\",\"depth\":{},\"thread\":{},\"start_us\":{},\"duration_us\":{},\
             \"attr\":{},\"trace\":{},\"span_id\":{},\"parent_span\":{}}}",
            self.stage.name(),
            self.depth,
            self.thread,
            self.start_us,
            self.duration_us,
            self.attr,
            self.trace,
            self.span_id,
            self.parent_span
        )
    }
}

struct Slot {
    /// Even = consistent, odd = write in progress; 0 = never written.
    /// The ticket that wrote the slot is recoverable as `(seq - 2) / 2`.
    seq: AtomicU64,
    words: [AtomicU64; 6],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// Fixed-capacity lock-free ring of the most recent [`SpanEvent`]s.
pub struct FlightRing {
    slots: Vec<Slot>,
    mask: u64,
    cursor: AtomicU64,
}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("capacity", &self.slots.len())
            // lint: ordering-ok(diagnostic count; no payload depends on it)
            .field("written", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRing {
    /// A ring holding the latest `capacity` events; `capacity` is rounded up
    /// to a power of two (minimum 8).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(8).next_power_of_two();
        FlightRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            mask: (capacity - 1) as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// The (power-of-two) number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (may exceed [`capacity`](Self::capacity)).
    pub fn pushed(&self) -> u64 {
        // lint: ordering-ok(monotonic statistics counter; readers tolerate staleness)
        self.cursor.load(Ordering::Relaxed)
    }

    /// Publishes an event, overwriting the oldest slot when full.
    /// Wait-free for writers: one `fetch_add` plus eight stores.
    ///
    /// Memory-ordering recipe (the classic safe-atomics seqlock writer):
    /// mark the slot odd, `fence(Release)` so the payload stores cannot
    /// become visible before the odd mark, store the payload relaxed, then
    /// publish the even sequence with `Release` so a reader that observes
    /// it also observes the payload. An earlier version used a `Release`
    /// store for the odd mark and no fence, which does not stop the
    /// payload stores from being reordered *above* the odd mark on weakly
    /// ordered hardware — a reader could then copy a half-overwritten
    /// payload yet still see a stable even sequence.
    pub fn push(&self, event: &SpanEvent) {
        // lint: ordering-ok(slot claim only distributes tickets; the slot's own seqlock orders the payload)
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // lint: ordering-ok(the Release fence below orders this odd mark before the payload stores)
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        // lint: ordering-ok(Release fence: payload stores cannot be reordered before the odd mark)
        fence(Ordering::Release);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[0].store(event.pack_word0(), Ordering::Relaxed);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[1].store(event.start_us, Ordering::Relaxed);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[2].store(event.duration_us, Ordering::Relaxed);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[3].store(event.attr, Ordering::Relaxed);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[4].store(event.trace, Ordering::Relaxed);
        // lint: ordering-ok(payload ordered by the fences and the final Release store)
        slot.words[5].store(event.pack_word5(), Ordering::Relaxed);
        // lint: ordering-ok(Release publish: a reader that Acquires this even value sees the whole payload)
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Copies out the current contents, oldest first.
    ///
    /// Slots being overwritten during the scan are skipped (seqlock
    /// validation), so a snapshot taken under heavy write load may hold
    /// fewer than `capacity` events; it never holds a torn one.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut events: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            // lint: ordering-ok(Acquire pairs with the writer's Release publish; an even value here means the payload below is visible)
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before == 0 || seq_before % 2 == 1 {
                continue; // never written, or write in progress
            }
            let words = [
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[0].load(Ordering::Relaxed),
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[1].load(Ordering::Relaxed),
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[2].load(Ordering::Relaxed),
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[3].load(Ordering::Relaxed),
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[4].load(Ordering::Relaxed),
                // lint: ordering-ok(payload loads validated by the seq re-check after the Acquire fence)
                slot.words[5].load(Ordering::Relaxed),
            ];
            // Acquire fence: the payload loads above cannot be reordered
            // below the sequence re-check (a plain Acquire *load* would
            // only order later accesses, not the earlier payload loads).
            // lint: ordering-ok(Acquire fence pins the payload loads before the re-check)
            fence(Ordering::Acquire);
            // If the sequence moved, a writer raced us and the copied
            // words may be torn — drop them.
            // lint: ordering-ok(re-check is ordered by the Acquire fence above; Relaxed load suffices)
            if slot.seq.load(Ordering::Relaxed) != seq_before {
                continue;
            }
            if let Some(event) = SpanEvent::unpack(words) {
                events.push(((seq_before - 2) / 2, event));
            }
        }
        events.sort_by_key(|(ticket, _)| *ticket);
        events.into_iter().map(|(_, event)| event).collect()
    }
}

/// A captured flight-recorder dump: why it was taken plus the ring contents
/// at capture time.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What triggered the capture (`"panic"`, `"slow"`, or `"on_demand"`).
    pub reason: String,
    /// Free-form context (panic message, or the slow request's latency).
    pub detail: String,
    /// Ring contents at capture time, oldest first.
    pub events: Vec<SpanEvent>,
}

impl FlightDump {
    /// Renders the dump as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"reason\":");
        crate::json::write_json_string(&mut out, &self.reason);
        out.push_str(",\"detail\":");
        crate::json::write_json_string(&mut out, &self.detail);
        out.push_str(",\"events\":[");
        for (index, event) in self.events.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(stage: Stage, start_us: u64) -> SpanEvent {
        SpanEvent {
            stage,
            depth: 1,
            thread: 7,
            start_us,
            duration_us: 42,
            attr: 5,
            trace: 9,
            span_id: 3,
            parent_span: 1,
        }
    }

    #[test]
    fn round_trips_events_in_push_order() {
        let ring = FlightRing::new(8);
        for i in 0..5 {
            ring.push(&event(Stage::Discovery, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.start_us, i as u64);
            assert_eq!(e.stage, Stage::Discovery);
            assert_eq!(e.thread, 7);
            assert_eq!(e.trace, 9);
            assert_eq!(e.span_id, 3);
            assert_eq!(e.parent_span, 1);
        }
    }

    #[test]
    fn wraps_keeping_the_newest_events() {
        let ring = FlightRing::new(8);
        for i in 0..20 {
            ring.push(&event(Stage::Algorithm, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 8);
        let starts: Vec<u64> = got.iter().map(|e| e.start_us).collect();
        assert_eq!(starts, (12..20).collect::<Vec<u64>>());
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRing::new(0).capacity(), 8);
        assert_eq!(FlightRing::new(100).capacity(), 128);
        assert_eq!(FlightRing::new(256).capacity(), 256);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        // Tie all fields to one value so tearing is visible.
                        let v = t * 1_000_000 + i;
                        ring.push(&SpanEvent {
                            stage: Stage::Request,
                            depth: 0,
                            thread: t as u32,
                            start_us: v,
                            duration_us: v,
                            attr: v,
                            trace: v,
                            span_id: v as u32 & 0xffff,
                            parent_span: v as u32 & 0xffff,
                        });
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            for e in ring.snapshot() {
                assert_eq!(e.start_us, e.duration_us);
                assert_eq!(e.start_us, e.attr);
                assert_eq!(e.start_us, e.trace);
                assert_eq!(e.thread as u64, e.start_us / 1_000_000);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.pushed(), 40_000);
    }

    #[test]
    fn dump_renders_json() {
        let dump = FlightDump {
            reason: "panic".to_string(),
            detail: "boom \"quoted\"".to_string(),
            events: vec![event(Stage::Request, 1)],
        };
        let json = dump.to_json();
        assert!(json.contains("\"reason\":\"panic\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"stage\":\"request\""));
    }
}
