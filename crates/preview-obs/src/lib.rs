//! Zero-dependency observability for the preview-tables serving stack:
//! structured spans, exact log-linear histograms, a flight recorder, and a
//! unified JSON snapshot exporter.
//!
//! The crate is std-only (consistent with the workspace's vendored-deps
//! policy) and built around one invariant: **instrumentation must be
//! output-neutral and near-free when off**. Concretely:
//!
//! * [`span!`] / [`enter`] cost a single relaxed atomic load when no
//!   [`Recorder`] in the process is enabled — the production default — so
//!   hot paths keep their instrumentation compiled in at <1% overhead
//!   (`obs-bench --check` enforces the floor).
//! * Recording never takes a lock and never branches on data values, so
//!   enabling a recorder cannot perturb the deterministic outputs the
//!   golden suites pin (it only reads clocks and bumps atomics).
//! * Every collected artifact — [`Histogram`] quantiles, [`Counter`]s,
//!   [`FlightDump`]s, per-shard memory — exports through one
//!   [`ObsSnapshot::to_json`] schema shared by all bench binaries.
//!
//! # Layout
//!
//! | Piece | What it is |
//! |---|---|
//! | [`Stage`] / [`Counter`] | the closed taxonomy instrumented across the stack |
//! | [`Recorder`] | per-stage [`Histogram`]s + counters + the flight ring |
//! | [`span!`] / [`SpanGuard`] | RAII stage timing on the attached recorder |
//! | [`FlightRing`] / [`FlightDump`] | seqlock ring of recent span events; dumped on panic / slow request / demand |
//! | [`ObsSnapshot`] | the JSON export consumed by `PreviewService::snapshot()` and every bench |
//! | [`JsonValue`] | minimal parser used by `obs-bench --check` to validate the export |
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use preview_obs::{span, ObsConfig, Recorder, Stage};
//!
//! let recorder = Arc::new(Recorder::new(ObsConfig::default()));
//! recorder.enable();
//! let _attach = recorder.attach(); // this thread now records spans
//! {
//!     let _request = span!(Stage::Request);
//!     let _discovery = span!(Stage::Discovery, candidates = 12);
//! } // guards drop: durations land in histograms + the flight ring
//! recorder.disable();
//! assert_eq!(recorder.stage_histogram(Stage::Request).count(), 1);
//! let json = recorder.snapshot().to_json();
//! assert!(json.contains("\"discovery\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod flight;
mod histogram;
mod json;
mod recorder;
mod rss;
mod snapshot;
mod stage;

pub use flight::{FlightDump, FlightRing, SpanEvent};
pub use histogram::{bucket_index, bucket_lower, Histogram, HistogramSnapshot, BUCKETS};
pub use json::{write_json_f64, write_json_string, JsonValue};
pub use recorder::{
    counter_add, enter, enter_with, AttachGuard, DumpReason, ObsConfig, Recorder, SpanGuard,
};
pub use rss::peak_rss_bytes;
pub use snapshot::{MemorySection, ObsSnapshot, ShardMemory};
pub use stage::{Counter, Stage, COUNTER_COUNT, STAGE_COUNT};

/// Compile-time guarantees for the types that cross thread boundaries: the
/// worker pool shares one `Arc<Recorder>` across every worker and the
/// bench/driver threads, so `Recorder` (and everything a snapshot carries
/// out of it) must be `Send + Sync`.
mod static_assertions {
    #![allow(dead_code)]

    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    const _: () = {
        assert_send_sync::<Recorder>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<FlightRing>();
        assert_send_sync_clone::<HistogramSnapshot>();
        assert_send_sync_clone::<ObsSnapshot>();
        assert_send_sync_clone::<FlightDump>();
        assert_send_sync_clone::<SpanEvent>();
        assert_send_sync_clone::<Stage>();
        assert_send_sync_clone::<Counter>();
        assert_send_sync_clone::<ObsConfig>();
    };
}
