//! Zero-dependency observability for the preview-tables serving stack:
//! structured spans, exact log-linear histograms, a flight recorder, and a
//! unified JSON snapshot exporter.
//!
//! The crate is std-only (consistent with the workspace's vendored-deps
//! policy) and built around one invariant: **instrumentation must be
//! output-neutral and near-free when off**. Concretely:
//!
//! * [`span!`] / [`enter`] cost a single relaxed atomic load when no
//!   [`Recorder`] in the process is enabled — the production default — so
//!   hot paths keep their instrumentation compiled in at <1% overhead
//!   (`obs-bench --check` enforces the floor).
//! * Recording never takes a lock and never branches on data values, so
//!   enabling a recorder cannot perturb the deterministic outputs the
//!   golden suites pin (it only reads clocks and bumps atomics).
//! * Every collected artifact — [`Histogram`] quantiles, [`Counter`]s,
//!   [`FlightDump`]s, per-shard memory — exports through one
//!   [`ObsSnapshot::to_json`] schema shared by all bench binaries.
//!
//! The crate observes at three layers:
//!
//! 1. **Per-request trace trees** — a [`TraceId`] minted at service
//!    ingress links every span of one request into a parent-linked
//!    [`TraceTree`]; the bounded [`TraceStore`] retains trees tail-based
//!    (slow / errored / panicked / 1-in-N sampled, see [`RetainReason`])
//!    and histogram buckets carry the latest trace as an exemplar.
//! 2. **Aggregate histograms** — exact log-linear per-stage [`Histogram`]s
//!    and [`Counter`]s, cumulative since process start.
//! 3. **Windowed SLOs** — a [`TimeSeries`] ring of snapshot deltas feeding
//!    sliding-window rates/quantiles and [`SloSpec`] burn-rate evaluation.
//!
//! # Layout
//!
//! | Piece | What it is |
//! |---|---|
//! | [`Stage`] / [`Counter`] | the closed taxonomy instrumented across the stack |
//! | [`Recorder`] | per-stage [`Histogram`]s + counters + the flight ring + the [`TraceStore`] |
//! | [`span!`] / [`SpanGuard`] | RAII stage timing on the attached recorder |
//! | [`TraceGuard`] / [`TraceContext`] | per-request tree building and the fork-join handoff |
//! | [`FlightRing`] / [`FlightDump`] | seqlock ring of recent span events; dumped on panic / slow request / demand |
//! | [`TimeSeries`] / [`SloSpec`] | windowed deltas, rates, and burn-rate evaluation |
//! | [`ObsSnapshot`] | the JSON export consumed by `PreviewService::snapshot()` and every bench |
//! | [`render_prometheus`] / [`render_top`] | text-exposition and dashboard exporters over the snapshot |
//! | [`JsonValue`] | minimal parser used by `obs-bench --check` to validate the export |
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use preview_obs::{span, ObsConfig, Recorder, Stage};
//!
//! let recorder = Arc::new(Recorder::new(ObsConfig::default()));
//! recorder.enable();
//! let _attach = recorder.attach(); // this thread now records spans
//! {
//!     let _request = span!(Stage::Request);
//!     let _discovery = span!(Stage::Discovery, candidates = 12);
//! } // guards drop: durations land in histograms + the flight ring
//! recorder.disable();
//! assert_eq!(recorder.stage_histogram(Stage::Request).count(), 1);
//! let json = recorder.snapshot().to_json();
//! assert!(json.contains("\"discovery\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod export;
mod flight;
mod histogram;
mod json;
mod recorder;
mod rss;
mod slo;
mod snapshot;
mod stage;
mod timeseries;
mod trace;

pub use export::{
    parse_prometheus_text, render_prometheus, render_top, roundtrip_failures, snapshot_is_blank,
    PromSample,
};
pub use flight::{FlightDump, FlightRing, SpanEvent};
pub use histogram::{bucket_index, bucket_lower, Histogram, HistogramSnapshot, BUCKETS};
pub use json::{write_json_f64, write_json_string, JsonValue};
pub use recorder::{
    counter_add, counter_add_many, current_context, enter, enter_in_context, enter_with,
    AttachGuard, DumpReason, ObsConfig, Recorder, SpanGuard, TraceGuard,
};
pub use rss::peak_rss_bytes;
pub use slo::{SloSpec, SloStatus};
pub use snapshot::{MemorySection, ObsSnapshot, RouteCount, ShardMemory};
pub use stage::{Counter, Stage, COUNTER_COUNT, STAGE_COUNT};
pub use timeseries::{MetricsCumulative, TickDelta, TimeSeries, TimeSeriesConfig, WindowSummary};
pub use trace::{
    RetainReason, TraceContext, TraceId, TraceOutcome, TraceSpan, TraceStore, TraceTree,
};

/// Compile-time guarantees for the types that cross thread boundaries: the
/// worker pool shares one `Arc<Recorder>` across every worker and the
/// bench/driver threads, so `Recorder` (and everything a snapshot carries
/// out of it) must be `Send + Sync`.
mod static_assertions {
    #![allow(dead_code)]

    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    const _: () = {
        assert_send_sync::<Recorder>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<FlightRing>();
        assert_send_sync::<TraceStore>();
        assert_send_sync_clone::<HistogramSnapshot>();
        assert_send_sync_clone::<ObsSnapshot>();
        assert_send_sync_clone::<FlightDump>();
        assert_send_sync_clone::<SpanEvent>();
        assert_send_sync_clone::<Stage>();
        assert_send_sync_clone::<Counter>();
        assert_send_sync_clone::<ObsConfig>();
        assert_send_sync_clone::<TraceId>();
        assert_send_sync_clone::<TraceContext>();
        assert_send_sync_clone::<TraceTree>();
        assert_send_sync_clone::<RetainReason>();
        assert_send_sync_clone::<RouteCount>();
        assert_send_sync_clone::<SloSpec>();
        assert_send_sync_clone::<SloStatus>();
        assert_send_sync_clone::<WindowSummary>();
        assert_send_sync_clone::<MetricsCumulative>();
    };
}
