//! The [`Recorder`]: per-stage histograms, event counters, the flight ring,
//! and the thread-local span machinery behind the [`span!`](crate::span)
//! macro.
//!
//! # Cost model
//!
//! The crate keeps one global count of *enabled* recorders. When it is zero
//! — the production default — [`enter`] is a single relaxed atomic load plus
//! a `None` guard, so instrumentation compiled into hot paths costs well
//! under 1% of service throughput (enforced by `obs-bench --check`). When a
//! recorder is enabled and attached to the current thread, a span costs two
//! monotonic clock reads and a dozen relaxed atomic operations — no locks.
//!
//! # Attachment
//!
//! Recorders are explicit, not ambient: a thread records into whichever
//! recorder it has [attached](Recorder::attach). Worker pools attach once
//! per worker at startup; fork-join helper threads stay unattached, which
//! keeps parallel sections uninstrumented and the outputs deterministic.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::flight::{FlightDump, FlightRing, SpanEvent};
use crate::histogram::Histogram;
use crate::stage::{Counter, Stage, COUNTER_COUNT, STAGE_COUNT};
use crate::trace::{
    ActiveTrace, RetainReason, TraceContext, TraceId, TraceOutcome, TraceSpan, TraceStore,
    TraceTree, ROOT_SPAN_ID,
};

/// Number of recorders currently enabled, across the whole process. The
/// [`enter`] fast path is one relaxed load of this.
static ENABLED_RECORDERS: AtomicUsize = AtomicUsize::new(0);

/// Source of small per-process thread ids for flight events.
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// The recorder this thread records spans into, if any.
    static CURRENT: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This thread's small id, assigned on first use.
    static THREAD_ID: Cell<Option<u32>> = const { Cell::new(None) };
    /// The trace the current request is building, between
    /// [`Recorder::begin_trace`] and [`TraceGuard::finish`].
    static TRACE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

fn thread_id() -> u32 {
    THREAD_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            // lint: ordering-ok(id allocation only needs uniqueness, which fetch_add gives at any ordering)
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    })
}

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Flight-ring capacity in events (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Requests slower than this many microseconds trigger a flight dump
    /// and qualify their trace tree for retention (`None` disables the
    /// whole-request slow threshold).
    pub slow_threshold_us: Option<u64>,
    /// Most recent dumps retained; older dumps are discarded.
    pub max_dumps: usize,
    /// Most recent trace trees retained by tail-based sampling.
    pub trace_capacity: usize,
    /// Head-samples every Nth trace for retention regardless of latency
    /// (`0` disables head sampling).
    pub sample_every: u64,
    /// Per-stage slow thresholds in microseconds: a single span of a stage
    /// exceeding its threshold marks the whole request
    /// [slow](RetainReason::Slow) even if the total stays under
    /// [`slow_threshold_us`](ObsConfig::slow_threshold_us).
    pub stage_thresholds_us: [Option<u64>; STAGE_COUNT],
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 1024,
            slow_threshold_us: None,
            max_dumps: 16,
            trace_capacity: 32,
            sample_every: 0,
            stage_thresholds_us: [None; STAGE_COUNT],
        }
    }
}

impl ObsConfig {
    /// Returns the config with the whole-request slow threshold set.
    pub fn with_slow_threshold(mut self, threshold_us: u64) -> ObsConfig {
        self.slow_threshold_us = Some(threshold_us);
        self
    }

    /// Returns the config with 1-in-`every` head sampling enabled
    /// (`0` disables it).
    pub fn with_sample_every(mut self, every: u64) -> ObsConfig {
        self.sample_every = every;
        self
    }

    /// Returns the config with a per-stage slow threshold set.
    pub fn with_stage_threshold(mut self, stage: Stage, threshold_us: u64) -> ObsConfig {
        self.stage_thresholds_us[stage as usize] = Some(threshold_us);
        self
    }
}

/// What triggered a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpReason {
    /// A worker panicked while serving a request.
    Panic,
    /// A request exceeded [`ObsConfig::slow_threshold_us`].
    Slow,
    /// An explicit snapshot/dump call.
    OnDemand,
}

impl DumpReason {
    /// Stable name used in dump JSON.
    pub const fn name(self) -> &'static str {
        match self {
            DumpReason::Panic => "panic",
            DumpReason::Slow => "slow",
            DumpReason::OnDemand => "on_demand",
        }
    }
}

/// Collects spans, counters, and flight events for one serving stack.
///
/// A recorder starts *disabled*: attached threads skip all span work until
/// [`enable`](Recorder::enable) is called. Enabling is process-visible
/// (it feeds the [`enter`] fast-path check) and reversible.
pub struct Recorder {
    config: ObsConfig,
    epoch: Instant,
    enabled: AtomicBool,
    stages: [Histogram; STAGE_COUNT],
    counters: [AtomicU64; COUNTER_COUNT],
    ring: FlightRing,
    dumps: Mutex<VecDeque<FlightDump>>,
    traces: TraceStore,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("config", &self.config)
            .field("ring", &self.ring)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

impl Recorder {
    /// A disabled recorder with the given configuration.
    pub fn new(config: ObsConfig) -> Recorder {
        Recorder {
            config,
            epoch: Instant::now(),
            enabled: AtomicBool::new(false),
            stages: std::array::from_fn(|_| Histogram::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: FlightRing::new(config.ring_capacity),
            dumps: Mutex::new(VecDeque::new()),
            traces: TraceStore::new(config.trace_capacity),
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        // lint: ordering-ok(advisory gate flag; a stale read only delays span capture by one transition)
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts recording spans on attached threads. Idempotent.
    pub fn enable(&self) {
        // lint: ordering-ok(the swap makes the idempotence check atomic; cross-thread visibility timing is advisory)
        if !self.enabled.swap(true, Ordering::Relaxed) {
            // lint: ordering-ok(global enabled count is a fast-path gate; spans near the transition may be missed by design)
            ENABLED_RECORDERS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stops recording spans. Idempotent; counters and histograms persist.
    pub fn disable(&self) {
        // lint: ordering-ok(the swap makes the idempotence check atomic; cross-thread visibility timing is advisory)
        if self.enabled.swap(false, Ordering::Relaxed) {
            // lint: ordering-ok(global enabled count is a fast-path gate; spans near the transition may be missed by design)
            ENABLED_RECORDERS.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Makes this recorder the current thread's span sink until the
    /// returned guard drops (which restores the previous attachment).
    pub fn attach(self: &Arc<Recorder>) -> AttachGuard {
        let previous = CURRENT.with(|cell| cell.replace(Some(Arc::clone(self))));
        AttachGuard { previous }
    }

    /// Microseconds elapsed since this recorder was created.
    pub fn epoch_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Records a finished span directly (the [`SpanGuard`] drop path).
    /// Also available to callers that measure a duration themselves, e.g.
    /// queue wait computed from an enqueue timestamp.
    pub fn record_span(&self, stage: Stage, depth: u8, start_us: u64, duration_us: u64, attr: u64) {
        self.record_span_traced(stage, depth, start_us, duration_us, attr, 0, 0, 0);
    }

    /// [`record_span`](Recorder::record_span) with trace linkage: a non-zero
    /// `trace` stamps the stage histogram bucket's exemplar and rides along
    /// in the flight-ring event together with the span's parent link.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_traced(
        &self,
        stage: Stage,
        depth: u8,
        start_us: u64,
        duration_us: u64,
        attr: u64,
        trace: u64,
        span_id: u32,
        parent_span: u32,
    ) {
        let histogram = &self.stages[stage as usize];
        if trace != 0 {
            histogram.record_with_exemplar(duration_us, trace);
        } else {
            histogram.record(duration_us);
        }
        self.ring.push(&SpanEvent {
            stage,
            depth,
            thread: thread_id(),
            start_us,
            duration_us,
            attr,
            trace,
            span_id,
            parent_span,
        });
    }

    /// Records a duration against `stage` as a depth-0 span ending now.
    pub fn record_duration(&self, stage: Stage, duration: std::time::Duration) {
        let duration_us = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        let now = self.epoch_us();
        self.record_span(stage, 0, now.saturating_sub(duration_us), duration_us, 0);
    }

    /// Adds `n` to an event counter. Always live, even when disabled —
    /// counters are one relaxed `fetch_add` and feed the snapshot.
    pub fn add_counter(&self, counter: Counter, n: u64) {
        // lint: ordering-ok(monotonic statistics counter; no other memory depends on its value)
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of an event counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        // lint: ordering-ok(statistics read; snapshots tolerate slightly stale counts)
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// The histogram of recorded durations for `stage` (microseconds).
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Total events ever pushed into the flight ring.
    pub fn events_recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Current flight-ring contents, oldest first.
    pub fn ring_snapshot(&self) -> Vec<SpanEvent> {
        self.ring.snapshot()
    }

    /// Captures a flight dump now, retains it (bounded by
    /// [`ObsConfig::max_dumps`]), and returns a copy. Panic and slow dumps
    /// bump their respective counters.
    pub fn capture_dump(&self, reason: DumpReason, detail: &str) -> FlightDump {
        match reason {
            DumpReason::Panic => self.add_counter(Counter::PanicDumps, 1),
            DumpReason::Slow => self.add_counter(Counter::SlowDumps, 1),
            DumpReason::OnDemand => {}
        }
        let dump = FlightDump {
            reason: reason.name().to_string(),
            detail: detail.to_string(),
            events: self.ring.snapshot(),
        };
        // Recover from poisoning instead of unwrapping: this path runs
        // from the worker *panic* hook, where a second panic would abort
        // the process. The critical section only rotates a bounded deque,
        // so a poisoned guard still holds structurally valid data.
        let mut dumps = self.dumps.lock().unwrap_or_else(PoisonError::into_inner);
        if dumps.len() >= self.config.max_dumps.max(1) {
            dumps.pop_front();
        }
        dumps.push_back(dump.clone());
        dump
    }

    /// Captures a slow-request dump if `latency_us` exceeds the configured
    /// threshold; returns whether a dump was taken.
    pub fn maybe_dump_slow(&self, latency_us: u64, detail: &str) -> bool {
        match self.config.slow_threshold_us {
            Some(threshold) if latency_us > threshold => {
                self.capture_dump(DumpReason::Slow, detail);
                true
            }
            _ => false,
        }
    }

    /// Retained dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        // Same poison recovery as `capture_dump`: dump retention must
        // stay readable after a worker panic.
        self.dumps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// The tail-sampled trace-tree store.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Captures one flight dump for a request that qualified for dump-worthy
    /// retention reasons ([slow](RetainReason::Slow) and/or
    /// [panic](RetainReason::Panic)) — a request qualifying both ways is
    /// dumped *once*, with the joined reason string (`"slow+panic"`) and
    /// both counters bumped. Non-dump-worthy reasons are ignored.
    pub fn capture_dump_for(&self, reasons: &[RetainReason], detail: &str) -> Option<FlightDump> {
        let mut names: Vec<&str> = Vec::new();
        for reason in reasons {
            match reason {
                RetainReason::Slow => {
                    self.add_counter(Counter::SlowDumps, 1);
                    names.push(RetainReason::Slow.name());
                }
                RetainReason::Panic => {
                    self.add_counter(Counter::PanicDumps, 1);
                    names.push(RetainReason::Panic.name());
                }
                RetainReason::Error | RetainReason::Sampled => {}
            }
        }
        if names.is_empty() {
            return None;
        }
        let dump = FlightDump {
            reason: names.join("+"),
            detail: detail.to_string(),
            events: self.ring.snapshot(),
        };
        // Same bounded rotation and poison recovery as `capture_dump`.
        let mut dumps = self.dumps.lock().unwrap_or_else(PoisonError::into_inner);
        if dumps.len() >= self.config.max_dumps.max(1) {
            dumps.pop_front();
        }
        dumps.push_back(dump.clone());
        Some(dump)
    }

    /// Starts building a trace tree for `trace` on the current thread.
    ///
    /// Called by the worker once per dequeued request, before any span
    /// opens; `enqueued` anchors the synthetic root span so queue wait is
    /// part of the tree. Returns an inactive guard — and records nothing —
    /// when the recorder is disabled. The guard must be
    /// [finished](TraceGuard::finish) on the same thread; dropping it
    /// unfinished discards the partial trace.
    pub fn begin_trace(self: &Arc<Recorder>, trace: TraceId, enqueued: Instant) -> TraceGuard {
        if !self.is_enabled() {
            return TraceGuard(None);
        }
        TRACE.with(|cell| {
            *cell.borrow_mut() = Some(ActiveTrace::new(trace));
        });
        TraceGuard(Some(TraceInner {
            recorder: Arc::clone(self),
            trace,
            enqueued,
        }))
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // Keep the global enabled count honest if dropped while enabled.
        self.disable();
    }
}

/// Restores the previous thread attachment when dropped.
/// Returned by [`Recorder::attach`].
#[derive(Debug)]
pub struct AttachGuard {
    previous: Option<Arc<Recorder>>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|cell| {
            *cell.borrow_mut() = self.previous.take();
        });
    }
}

/// The per-request trace being built; returned by [`Recorder::begin_trace`].
///
/// While the guard is live, every span opened on this thread joins the
/// trace with a parent link. [`finish`](TraceGuard::finish) synthesises the
/// queue-wait and root request spans, decides tail-based retention, and
/// captures at most one flight dump for slow/panicked requests. Dropping
/// the guard without finishing discards the partial trace.
#[derive(Debug)]
pub struct TraceGuard(Option<TraceInner>);

#[derive(Debug)]
struct TraceInner {
    recorder: Arc<Recorder>,
    trace: TraceId,
    enqueued: Instant,
}

impl TraceGuard {
    /// Whether this guard is actually collecting a trace (the recorder was
    /// enabled when the request was dequeued).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Completes the trace: synthesises the queue-wait child and the root
    /// request span (anchored at the enqueue instant, so child stage spans
    /// sum to the root within clock resolution), evaluates every
    /// [`RetainReason`], and — when any applies — retains the tree and
    /// captures a single flight dump for the dump-worthy reasons.
    ///
    /// `detail` is free-form worker context (graph name, latency, panic
    /// message) stored on both the tree and the dump.
    pub fn finish(mut self, queue_wait: Duration, outcome: TraceOutcome, detail: &str) {
        let Some(inner) = self.0.take() else { return };
        let Some(mut active) = TRACE.with(|cell| cell.borrow_mut().take()) else {
            return;
        };
        let recorder = &inner.recorder;
        let trace = inner.trace.as_u64();
        let root_start_us = inner
            .enqueued
            .saturating_duration_since(recorder.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let total_us = inner
            .enqueued
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let queue_wait_us = queue_wait.as_micros().min(u128::from(u64::MAX)) as u64;

        // Queue wait predates the worker, so its span is synthesised here
        // from the enqueue timestamp instead of being guard-recorded.
        let (queue_id, queue_parent) = active.open(Some(ROOT_SPAN_ID));
        active.close(TraceSpan {
            span_id: queue_id,
            parent_id: queue_parent,
            stage: Stage::QueueWait,
            thread: thread_id(),
            start_us: root_start_us,
            duration_us: queue_wait_us,
            attr: 0,
        });
        recorder.record_span_traced(
            Stage::QueueWait,
            1,
            root_start_us,
            queue_wait_us,
            0,
            trace,
            queue_id,
            queue_parent,
        );

        // The root span covers the whole request, queue wait included; its
        // attribute is the number of child spans in the finished tree. Both
        // synthetic spans reach the flight ring *before* any dump below, so
        // a panicking request's dump shows its full span trail.
        let child_count = active.spans.len() as u64;
        active.close(TraceSpan {
            span_id: ROOT_SPAN_ID,
            parent_id: 0,
            stage: Stage::Request,
            thread: thread_id(),
            start_us: root_start_us,
            duration_us: total_us,
            attr: child_count,
        });
        recorder.record_span_traced(
            Stage::Request,
            0,
            root_start_us,
            total_us,
            child_count,
            trace,
            ROOT_SPAN_ID,
            0,
        );

        let config = recorder.config();
        let mut reasons = Vec::new();
        let over_total = matches!(config.slow_threshold_us, Some(t) if total_us > t);
        let over_stage = active.spans.iter().any(|span| {
            matches!(
                config.stage_thresholds_us[span.stage as usize],
                Some(t) if span.duration_us > t
            )
        });
        if over_total || over_stage {
            reasons.push(RetainReason::Slow);
        }
        match outcome {
            TraceOutcome::Ok => {}
            TraceOutcome::Error => reasons.push(RetainReason::Error),
            TraceOutcome::Panic => reasons.push(RetainReason::Panic),
        }
        if config.sample_every > 0 && (trace - 1) % config.sample_every == 0 {
            reasons.push(RetainReason::Sampled);
        }
        if reasons.is_empty() {
            return;
        }
        recorder.capture_dump_for(&reasons, detail);
        recorder.traces.retain(TraceTree {
            trace: inner.trace,
            reasons,
            detail: detail.to_string(),
            spans: active.spans,
        });
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        // Finishing clears the slot; an unfinished guard must too, so a
        // worker bailing out early cannot leak spans into the next request.
        if self.0.is_some() {
            TRACE.with(|cell| {
                *cell.borrow_mut() = None;
            });
        }
    }
}

/// A live span; recorded when dropped. Produced by [`enter`] / [`span!`](crate::span).
#[derive(Debug)]
pub struct SpanGuard(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    recorder: Arc<Recorder>,
    stage: Stage,
    depth: u8,
    attr: u64,
    start: Instant,
    /// Raw trace id (`0` when no trace is active on this thread).
    trace: u64,
    span_id: u32,
    parent_id: u32,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled path).
    pub const fn noop() -> SpanGuard {
        SpanGuard(None)
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the span's free-form attribute (e.g. a candidate count computed
    /// mid-stage). No-op on the disabled path.
    pub fn set_attr(&mut self, attr: u64) {
        if let Some(active) = &mut self.0 {
            active.attr = attr;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let start_us = active
                .start
                .saturating_duration_since(active.recorder.epoch)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let duration_us = active.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            if active.trace != 0 {
                // Append the completed span to the thread's trace tree.
                // This runs during panic unwinding too, so an unwinding
                // request still carries its partial tree into retention.
                TRACE.with(|cell| {
                    if let Some(current) = cell.borrow_mut().as_mut() {
                        if current.trace.as_u64() == active.trace {
                            current.close(TraceSpan {
                                span_id: active.span_id,
                                parent_id: active.parent_id,
                                stage: active.stage,
                                thread: thread_id(),
                                start_us,
                                duration_us,
                                attr: active.attr,
                            });
                        }
                    }
                });
            }
            active.recorder.record_span_traced(
                active.stage,
                active.depth,
                start_us,
                duration_us,
                active.attr,
                active.trace,
                active.span_id,
                active.parent_id,
            );
        }
    }
}

/// Opens a span for `stage` on the current thread's attached recorder.
///
/// Returns a no-op guard — after a single relaxed atomic load — when no
/// recorder in the process is enabled, or when this thread has no enabled
/// recorder attached. This runs during panic unwinding too: guards dropped
/// by an unwind still record, which is how a panicking request's span trail
/// reaches the flight ring before `catch_unwind` returns.
#[inline]
pub fn enter(stage: Stage) -> SpanGuard {
    enter_with(stage, 0)
}

/// Adds `n` to `counter` on the current thread's attached recorder, if any.
///
/// Like [`enter`], the fast path is a single relaxed load of the global
/// enabled count: a fully-disabled recorder set pays exactly one load per
/// event, with the thread-local lookup in the cold path (the disabled
/// overhead gate in `obs-bench` pins this). Beyond that gate, counters are
/// always live — [`Recorder::add_counter`] accumulates whether or not the
/// *attached* recorder is the enabled one. Threads without an attached
/// recorder (fork-join helpers, plain library callers) drop the increment:
/// library code can report counters unconditionally and only instrumented
/// serving stacks collect them.
#[inline]
pub fn counter_add(counter: Counter, n: u64) {
    // lint: ordering-ok(disabled-recorder fast path; a stale zero only skips a count near an enable transition)
    if ENABLED_RECORDERS.load(Ordering::Relaxed) == 0 {
        return;
    }
    counter_add_slow(&[(counter, n)]);
}

/// Adds a batch of counter increments in one call: the same single-load
/// fast path as [`counter_add`], and one thread-local lookup for the whole
/// batch instead of one per counter. Use at call sites that report several
/// counters back-to-back (e.g. best-first search statistics).
#[inline]
pub fn counter_add_many(counters: &[(Counter, u64)]) {
    // lint: ordering-ok(disabled-recorder fast path; a stale zero only skips counts near an enable transition)
    if ENABLED_RECORDERS.load(Ordering::Relaxed) == 0 {
        return;
    }
    counter_add_slow(counters);
}

#[cold]
fn counter_add_slow(counters: &[(Counter, u64)]) {
    CURRENT.with(|cell| {
        if let Some(recorder) = cell.borrow().as_ref() {
            for &(counter, n) in counters {
                recorder.add_counter(counter, n);
            }
        }
    });
}

/// The current thread's trace position, for handing across an orchestration
/// boundary: the active trace plus the span id new children should parent
/// to. `None` — after a single relaxed load on the disabled path — when no
/// trace is being built on this thread.
///
/// Capture the context *before* a fork-join pool call and reopen spans at
/// the orchestration level with [`enter_in_context`]; spans never fire
/// inside pool closures (the `trace-in-fjpool-closure` lint pins this), so
/// the handoff is explicit and the parallel section stays deterministic.
#[inline]
pub fn current_context() -> Option<TraceContext> {
    // lint: ordering-ok(disabled-recorder fast path; a stale zero only skips one context capture near an enable transition)
    if ENABLED_RECORDERS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    TRACE.with(|cell| {
        cell.borrow().as_ref().map(|active| TraceContext {
            trace: active.trace,
            parent: active.current_parent(),
        })
    })
}

/// [`enter_with`], but parenting the span to an explicit [`TraceContext`]
/// captured earlier with [`current_context`] instead of the thread's open
/// span stack. Falls back to stack parenting when `context` is `None` or
/// names a different trace than the one active on this thread.
#[inline]
pub fn enter_in_context(context: Option<TraceContext>, stage: Stage, attr: u64) -> SpanGuard {
    // lint: ordering-ok(disabled-recorder fast path; a stale zero only skips a span near an enable transition)
    if ENABLED_RECORDERS.load(Ordering::Relaxed) == 0 {
        return SpanGuard::noop();
    }
    enter_slow(stage, attr, context)
}

/// [`enter`], with a free-form attribute attached to the span event.
#[inline]
pub fn enter_with(stage: Stage, attr: u64) -> SpanGuard {
    // lint: ordering-ok(disabled-recorder fast path; a stale zero only skips a span near an enable transition)
    if ENABLED_RECORDERS.load(Ordering::Relaxed) == 0 {
        return SpanGuard::noop();
    }
    enter_slow(stage, attr, None)
}

#[cold]
fn enter_slow(stage: Stage, attr: u64, context: Option<TraceContext>) -> SpanGuard {
    CURRENT.with(|cell| {
        let current = cell.borrow();
        match current.as_ref() {
            Some(recorder) if recorder.is_enabled() => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                let (trace, span_id, parent_id) = TRACE.with(|t| {
                    match t.borrow_mut().as_mut() {
                        Some(active) => {
                            // An explicit context wins only when it names
                            // this thread's trace; a stale handoff from a
                            // different request falls back to the stack.
                            let explicit = context
                                .filter(|ctx| ctx.trace == active.trace)
                                .map(|ctx| ctx.parent);
                            let (id, parent) = active.open(explicit);
                            (active.trace.as_u64(), id, parent)
                        }
                        None => (0, 0, 0),
                    }
                });
                SpanGuard(Some(ActiveSpan {
                    recorder: Arc::clone(recorder),
                    stage,
                    depth: depth.min(u32::from(u8::MAX)) as u8,
                    attr,
                    start: Instant::now(),
                    trace,
                    span_id,
                    parent_id,
                }))
            }
            _ => SpanGuard::noop(),
        }
    })
}

/// Opens a [`SpanGuard`] for a stage: `span!(Stage::Discovery)`, with an
/// optional attribute — `span!(Stage::EntropyScoring, rel_type = id)` or
/// `span!(Stage::Algorithm, candidates)`. The attribute name is
/// documentation only; the value is stored as a `u64` on the span event.
#[macro_export]
macro_rules! span {
    ($stage:expr) => {
        $crate::enter($stage)
    };
    ($stage:expr, $name:ident = $attr:expr) => {
        $crate::enter_with($stage, $attr as u64)
    };
    ($stage:expr, $attr:expr) => {
        $crate::enter_with($stage, $attr as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that observe the process-global enabled count.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_process_records_nothing() {
        let _serial = serial();
        // No enabled recorder anywhere: guard is a no-op even when attached.
        let recorder = Arc::new(Recorder::default());
        let _attach = recorder.attach();
        let guard = enter(Stage::Request);
        assert!(!guard.is_recording());
        drop(guard);
        assert_eq!(recorder.stage_histogram(Stage::Request).count(), 0);
        assert_eq!(recorder.events_recorded(), 0);
    }

    #[test]
    fn enabled_and_attached_records_nested_spans() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        let _attach = recorder.attach();
        {
            let _request = span!(Stage::Request);
            {
                let mut discovery = span!(Stage::Discovery, candidates = 3);
                discovery.set_attr(9);
            }
        }
        recorder.disable();
        assert_eq!(recorder.stage_histogram(Stage::Request).count(), 1);
        assert_eq!(recorder.stage_histogram(Stage::Discovery).count(), 1);
        let events = recorder.ring_snapshot();
        assert_eq!(events.len(), 2);
        // Inner span drops first, so it is the older ring entry.
        assert_eq!(events[0].stage, Stage::Discovery);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[0].attr, 9);
        assert_eq!(events[1].stage, Stage::Request);
        assert_eq!(events[1].depth, 0);
    }

    #[test]
    fn unattached_thread_records_nothing_while_another_recorder_is_enabled() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        // This thread never attached `recorder`; even though the global
        // enabled count is non-zero, the slow path finds no attachment.
        let handle = std::thread::spawn(|| enter(Stage::Request).is_recording());
        assert!(!handle.join().unwrap());
        recorder.disable();
    }

    #[test]
    fn attach_guard_restores_previous_recorder() {
        let _serial = serial();
        let outer = Arc::new(Recorder::default());
        let inner = Arc::new(Recorder::default());
        outer.enable();
        inner.enable();
        let _outer_attach = outer.attach();
        {
            let _inner_attach = inner.attach();
            drop(span!(Stage::Algorithm));
        }
        drop(span!(Stage::Response));
        outer.disable();
        inner.disable();
        assert_eq!(inner.stage_histogram(Stage::Algorithm).count(), 1);
        assert_eq!(inner.stage_histogram(Stage::Response).count(), 0);
        assert_eq!(outer.stage_histogram(Stage::Response).count(), 1);
        assert_eq!(outer.stage_histogram(Stage::Algorithm).count(), 0);
    }

    #[test]
    fn counters_and_dumps_work_while_disabled() {
        let recorder = Recorder::new(ObsConfig {
            max_dumps: 2,
            ..ObsConfig::default()
        });
        recorder.add_counter(Counter::Publishes, 3);
        assert_eq!(recorder.counter(Counter::Publishes), 3);
        recorder.capture_dump(DumpReason::Panic, "first");
        recorder.capture_dump(DumpReason::OnDemand, "second");
        recorder.capture_dump(DumpReason::Slow, "third");
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 2, "bounded by max_dumps");
        assert_eq!(dumps[0].detail, "second");
        assert_eq!(dumps[1].detail, "third");
        assert_eq!(recorder.counter(Counter::PanicDumps), 1);
        assert_eq!(recorder.counter(Counter::SlowDumps), 1);
    }

    #[test]
    fn slow_threshold_gates_slow_dumps() {
        let recorder = Recorder::new(ObsConfig {
            slow_threshold_us: Some(1_000),
            ..ObsConfig::default()
        });
        assert!(!recorder.maybe_dump_slow(500, "fast"));
        assert!(recorder.maybe_dump_slow(1_500, "slow"));
        assert_eq!(recorder.dumps().len(), 1);
        assert_eq!(recorder.counter(Counter::SlowDumps), 1);

        let unset = Recorder::default();
        assert!(!unset.maybe_dump_slow(u64::MAX, "never"));
    }

    #[test]
    fn panic_unwind_still_records_open_spans() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::default());
        recorder.enable();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _attach = recorder.attach();
            let _request = span!(Stage::Request);
            panic!("boom");
        }));
        assert!(result.is_err());
        recorder.disable();
        assert_eq!(recorder.stage_histogram(Stage::Request).count(), 1);
        assert_eq!(recorder.ring_snapshot().len(), 1);
    }

    #[test]
    fn dropping_an_enabled_recorder_releases_the_global_count() {
        let _serial = serial();
        let before = ENABLED_RECORDERS.load(Ordering::Relaxed);
        {
            let recorder = Recorder::default();
            recorder.enable();
            recorder.enable(); // idempotent
            assert_eq!(ENABLED_RECORDERS.load(Ordering::Relaxed), before + 1);
        }
        assert_eq!(ENABLED_RECORDERS.load(Ordering::Relaxed), before);
    }

    /// Regression test: `capture_dump` runs from the worker panic hook, so
    /// it must survive a poisoned dumps mutex instead of double-panicking
    /// (which would abort the process mid-diagnosis).
    #[test]
    fn capture_dump_survives_a_poisoned_dumps_mutex() {
        let recorder = Arc::new(Recorder::default());
        // Poison the dumps mutex by panicking while holding it.
        let poisoner = Arc::clone(&recorder);
        std::thread::spawn(move || {
            let _guard = poisoner.dumps.lock().unwrap();
            panic!("poison the dumps lock");
        })
        .join()
        .unwrap_err();
        assert!(recorder.dumps.is_poisoned());

        let dump = recorder.capture_dump(DumpReason::Panic, "worker died");
        assert_eq!(dump.reason, "panic");
        let retained = recorder.dumps();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].detail, "worker died");
        assert_eq!(recorder.counter(Counter::PanicDumps), 1);
    }

    #[test]
    fn traces_link_spans_to_parents_and_head_sampling_retains() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::new(ObsConfig::default().with_sample_every(1)));
        recorder.enable();
        let _attach = recorder.attach();
        let tguard = recorder.begin_trace(TraceId::from_seq(6), Instant::now());
        assert!(tguard.is_active());
        {
            let _outer = span!(Stage::Discovery);
            let context = current_context();
            assert_eq!(context.unwrap().trace, TraceId::from_seq(6));
            let _inner = enter_in_context(context, Stage::Algorithm, 5);
        }
        tguard.finish(Duration::from_micros(100), TraceOutcome::Ok, "graph=g");
        recorder.disable();

        let trees = recorder.traces().trees();
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.reasons, vec![RetainReason::Sampled]);
        assert_eq!(tree.detail, "graph=g");
        let root = *tree.root().unwrap();
        assert_eq!(root.stage, Stage::Request);
        assert_eq!(root.attr, 3, "three child spans in the tree");
        // Every non-root parent link resolves to a span in the tree.
        let ids: Vec<u32> = tree.spans.iter().map(|s| s.span_id).collect();
        for span in &tree.spans {
            assert!(span.parent_id == 0 || ids.contains(&span.parent_id));
        }
        let find = |stage: Stage| tree.spans.iter().find(|s| s.stage == stage).unwrap();
        let discovery = find(Stage::Discovery);
        let algorithm = find(Stage::Algorithm);
        assert_eq!(discovery.parent_id, root.span_id);
        assert_eq!(
            algorithm.parent_id, discovery.span_id,
            "context handoff parents correctly"
        );
        assert_eq!(algorithm.attr, 5);
        let queue = find(Stage::QueueWait);
        assert_eq!(queue.parent_id, root.span_id);
        assert_eq!(queue.duration_us, 100);
        // The request histogram's exemplar points back at this trace, and a
        // sampled-only request captures no flight dump.
        let snapshot = recorder.stage_histogram(Stage::Request).snapshot();
        let raw = TraceId::from_seq(6).as_u64();
        assert!(snapshot.bucket_exemplars().contains(&raw));
        assert!(recorder.dumps().is_empty());
    }

    #[test]
    fn slow_and_panicked_requests_are_dumped_once_with_joined_reasons() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::new(ObsConfig::default().with_slow_threshold(0)));
        recorder.enable();
        let _attach = recorder.attach();
        let tguard = recorder.begin_trace(TraceId::from_seq(0), Instant::now());
        std::thread::sleep(Duration::from_millis(2));
        tguard.finish(Duration::ZERO, TraceOutcome::Panic, "graph=g panic=boom");
        recorder.disable();

        let trees = recorder.traces().trees();
        assert_eq!(trees.len(), 1);
        assert_eq!(
            trees[0].reasons,
            vec![RetainReason::Slow, RetainReason::Panic]
        );
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1, "slow+panic retains one dump, not two");
        assert_eq!(dumps[0].reason, "slow+panic");
        assert_eq!(dumps[0].detail, "graph=g panic=boom");
        assert_eq!(recorder.counter(Counter::SlowDumps), 1);
        assert_eq!(recorder.counter(Counter::PanicDumps), 1);
    }

    #[test]
    fn a_per_stage_threshold_marks_the_request_slow() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::new(
            ObsConfig::default().with_stage_threshold(Stage::QueueWait, 50),
        ));
        recorder.enable();
        let _attach = recorder.attach();
        let tguard = recorder.begin_trace(TraceId::from_seq(1), Instant::now());
        tguard.finish(Duration::from_micros(100), TraceOutcome::Ok, "graph=g");
        recorder.disable();
        let trees = recorder.traces().trees();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].reasons, vec![RetainReason::Slow]);
        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "slow");
    }

    #[test]
    fn begin_trace_on_a_disabled_recorder_is_inert() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::default());
        let tguard = recorder.begin_trace(TraceId::from_seq(0), Instant::now());
        assert!(!tguard.is_active());
        tguard.finish(Duration::ZERO, TraceOutcome::Ok, "");
        assert!(recorder.traces().is_empty());
        assert_eq!(recorder.events_recorded(), 0);
    }

    #[test]
    fn counter_helpers_pay_one_load_when_nothing_is_enabled() {
        let _serial = serial();
        let recorder = Arc::new(Recorder::default());
        let _attach = recorder.attach();
        counter_add(Counter::Publishes, 3);
        counter_add_many(&[(Counter::Publishes, 2), (Counter::CacheCarried, 1)]);
        assert_eq!(
            recorder.counter(Counter::Publishes),
            0,
            "the fast path returns before touching thread-locals"
        );
        recorder.enable();
        counter_add(Counter::Publishes, 3);
        counter_add_many(&[(Counter::Publishes, 2), (Counter::CacheCarried, 1)]);
        recorder.disable();
        assert_eq!(recorder.counter(Counter::Publishes), 5);
        assert_eq!(recorder.counter(Counter::CacheCarried), 1);
    }
}
