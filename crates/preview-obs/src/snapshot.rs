//! [`ObsSnapshot`]: a unified, JSON-renderable view of everything a
//! [`Recorder`] collected, plus the memory and peak-RSS context supplied by
//! the serving layer.
//!
//! The JSON schema is stable and self-describing: every stage in
//! [`Stage::ALL`] and every counter in [`Counter::ALL`] appears under its
//! [`name`](Stage::name), so `obs-bench --check` can verify the document by
//! enumeration. All durations are microseconds.

use crate::flight::FlightDump;
use crate::histogram::{bucket_lower, HistogramSnapshot};
use crate::json::{write_json_f64, write_json_string};
use crate::recorder::Recorder;
use crate::slo::SloStatus;
use crate::stage::{Counter, Stage};
use crate::timeseries::WindowSummary;
use crate::trace::{TraceId, TraceTree};

/// Memory accounting for one shard, mirrored from the graph layer's
/// per-shard report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMemory {
    /// Shard index.
    pub shard: u64,
    /// Entities homed in this shard.
    pub entities: u64,
    /// Encoded adjacency segments stored.
    pub segments: u64,
    /// Bytes of encoded adjacency payload.
    pub encoded_payload_bytes: u64,
    /// Bytes of per-shard directory overhead.
    pub directory_bytes: u64,
    /// Total bytes attributed to this shard.
    pub total_bytes: u64,
}

/// Memory accounting for a sharded graph version, mirrored from the graph
/// layer's `MemoryReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySection {
    /// Number of shards.
    pub shard_count: u64,
    /// Total entities across shards.
    pub entities: u64,
    /// Total edges across shards.
    pub edges: u64,
    /// Total bytes of the sharded representation.
    pub sharded_total_bytes: u64,
    /// Total bytes the equivalent unsharded index would use.
    pub unsharded_total_bytes: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardMemory>,
}

/// Requests served for one `(graph, algorithm)` route — the bounded label
/// set the Prometheus exporter is allowed to emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCount {
    /// The requested graph's name.
    pub graph: String,
    /// The resolved algorithm's stable name.
    pub algorithm: String,
    /// Requests completed for this route.
    pub requests: u64,
}

/// A point-in-time export of a [`Recorder`] plus serving-layer context.
///
/// Produced by [`Recorder::snapshot`]; the serving layer fills in
/// [`service_latency`](Self::service_latency), [`memory`](Self::memory),
/// [`routes`](Self::routes), [`window`](Self::window), and
/// [`slos`](Self::slos) before rendering.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Whether the recorder was enabled at snapshot time.
    pub enabled: bool,
    /// Total span events ever pushed into the flight ring.
    pub events_recorded: u64,
    /// Every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Every stage's duration histogram, in [`Stage::ALL`] order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// End-to-end service latency histogram, when the serving layer
    /// provides one (exact counts, not sampled).
    pub service_latency: Option<HistogramSnapshot>,
    /// Memory breakdown of the live graph version, when available.
    pub memory: Option<MemorySection>,
    /// Peak resident set size of the process, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Retained flight-recorder dumps, oldest first.
    pub dumps: Vec<FlightDump>,
    /// Tail-sampled trace trees, oldest first.
    pub traces: Vec<TraceTree>,
    /// Per-route request totals, when the serving layer provides them.
    pub routes: Vec<RouteCount>,
    /// Sliding-window rates and quantiles, when a time series is running.
    pub window: Option<WindowSummary>,
    /// Evaluated SLO statuses, when the serving layer registered specs.
    pub slos: Vec<SloStatus>,
}

impl Recorder {
    /// Exports counters, per-stage histograms, ring totals, retained dumps,
    /// and the current peak RSS. The serving layer adds
    /// [`ObsSnapshot::service_latency`] and [`ObsSnapshot::memory`].
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            enabled: self.is_enabled(),
            events_recorded: self.events_recorded(),
            counters: Counter::ALL.iter().map(|&c| (c, self.counter(c))).collect(),
            stages: Stage::ALL
                .iter()
                .map(|&s| (s, self.stage_histogram(s).snapshot()))
                .collect(),
            service_latency: None,
            memory: None,
            peak_rss_bytes: crate::peak_rss_bytes(),
            dumps: self.dumps(),
            traces: self.traces().trees(),
            routes: Vec::new(),
            window: None,
            slos: Vec::new(),
        }
    }
}

fn write_histogram(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum_us\":{},\"max_us\":{},\"mean_us\":",
        hist.count(),
        hist.sum(),
        hist.max()
    ));
    write_json_f64(out, hist.mean());
    out.push_str(&format!(
        ",\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"exemplars\":[",
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.quantile(0.999)
    ));
    let mut first = true;
    for (index, &exemplar) in hist.bucket_exemplars().iter().enumerate() {
        let Some(trace) = TraceId::from_raw(exemplar) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"bucket_lower_us\":{},\"trace\":\"{trace}\"}}",
            bucket_lower(index)
        ));
    }
    out.push_str("]}");
}

impl ObsSnapshot {
    /// Renders the snapshot as one JSON object (see the module docs for the
    /// schema). Parseable by [`JsonValue::parse`](crate::JsonValue::parse).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"enabled\":{},\"events_recorded\":{},\"counters\":{{",
            self.enabled, self.events_recorded
        ));
        for (index, (counter, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", counter.name(), value));
        }
        out.push_str("},\"stages\":{");
        for (index, (stage, hist)) in self.stages.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", stage.name()));
            write_histogram(&mut out, hist);
        }
        out.push_str("},\"service_latency\":");
        match &self.service_latency {
            Some(hist) => write_histogram(&mut out, hist),
            None => out.push_str("null"),
        }
        out.push_str(",\"memory\":");
        match &self.memory {
            Some(memory) => {
                out.push_str(&format!(
                    "{{\"shard_count\":{},\"entities\":{},\"edges\":{},\
                     \"sharded_total_bytes\":{},\"unsharded_total_bytes\":{},\"shards\":[",
                    memory.shard_count,
                    memory.entities,
                    memory.edges,
                    memory.sharded_total_bytes,
                    memory.unsharded_total_bytes
                ));
                for (index, shard) in memory.shards.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"shard\":{},\"entities\":{},\"segments\":{},\
                         \"encoded_payload_bytes\":{},\"directory_bytes\":{},\"total_bytes\":{}}}",
                        shard.shard,
                        shard.entities,
                        shard.segments,
                        shard.encoded_payload_bytes,
                        shard.directory_bytes,
                        shard.total_bytes
                    ));
                }
                out.push_str("]}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"peak_rss_bytes\":");
        match self.peak_rss_bytes {
            Some(bytes) => out.push_str(&format!("{bytes}")),
            None => out.push_str("null"),
        }
        out.push_str(",\"dumps\":[");
        for (index, dump) in self.dumps.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&dump.to_json());
        }
        out.push_str("],\"traces\":[");
        for (index, tree) in self.traces.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&tree.to_json());
        }
        out.push_str("],\"routes\":[");
        for (index, route) in self.routes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("{\"graph\":");
            write_json_string(&mut out, &route.graph);
            out.push_str(",\"algorithm\":");
            write_json_string(&mut out, &route.algorithm);
            out.push_str(&format!(",\"requests\":{}}}", route.requests));
        }
        out.push_str("],\"window\":");
        match &self.window {
            Some(window) => out.push_str(&window.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"slos\":[");
        for (index, slo) in self.slos.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&slo.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::recorder::{DumpReason, ObsConfig};
    use crate::stage::STAGE_COUNT;

    #[test]
    fn snapshot_json_parses_and_contains_every_stage_and_counter() {
        let recorder = Recorder::new(ObsConfig::default());
        recorder.record_span(Stage::Discovery, 1, 10, 250, 3);
        recorder.add_counter(Counter::Publishes, 2);
        recorder.capture_dump(DumpReason::OnDemand, "manual");
        let mut snapshot = recorder.snapshot();
        let latency = crate::Histogram::new();
        latency.record(100);
        latency.record(300);
        snapshot.service_latency = Some(latency.snapshot());
        snapshot.memory = Some(MemorySection {
            shard_count: 1,
            entities: 10,
            edges: 20,
            sharded_total_bytes: 4096,
            unsharded_total_bytes: 4000,
            shards: vec![ShardMemory {
                shard: 0,
                entities: 10,
                segments: 5,
                encoded_payload_bytes: 1000,
                directory_bytes: 96,
                total_bytes: 1096,
            }],
        });

        let json = snapshot.to_json();
        let parsed = JsonValue::parse(&json).expect("snapshot JSON must parse");

        let stages = parsed.get("stages").unwrap().as_object().unwrap();
        assert_eq!(stages.len(), STAGE_COUNT);
        for stage in Stage::ALL {
            let entry = stages
                .get(stage.name())
                .unwrap_or_else(|| panic!("stage '{}' missing from snapshot", stage.name()));
            assert!(entry.get("count").unwrap().as_u64().is_some());
            assert!(entry.get("p99_us").unwrap().as_u64().is_some());
        }
        assert_eq!(
            stages
                .get("discovery")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );

        let counters = parsed.get("counters").unwrap().as_object().unwrap();
        for counter in Counter::ALL {
            assert!(counters.contains_key(counter.name()));
        }
        assert_eq!(counters.get("publishes").unwrap().as_u64(), Some(2));

        let latency = parsed.get("service_latency").unwrap();
        assert_eq!(latency.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(latency.get("max_us").unwrap().as_u64(), Some(300));

        let memory = parsed.get("memory").unwrap();
        assert_eq!(memory.get("shard_count").unwrap().as_u64(), Some(1));
        assert_eq!(
            memory.get("shards").unwrap().as_array().unwrap()[0]
                .get("total_bytes")
                .unwrap()
                .as_u64(),
            Some(1096)
        );

        let dumps = parsed.get("dumps").unwrap().as_array().unwrap();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].get("reason").unwrap().as_str(), Some("on_demand"));

        assert_eq!(parsed.get("events_recorded").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn optional_sections_render_null() {
        let snapshot = Recorder::default().snapshot();
        let parsed = JsonValue::parse(&snapshot.to_json()).unwrap();
        assert_eq!(parsed.get("service_latency"), Some(&JsonValue::Null));
        assert_eq!(parsed.get("memory"), Some(&JsonValue::Null));
        assert_eq!(parsed.get("window"), Some(&JsonValue::Null));
        assert_eq!(parsed.get("enabled"), Some(&JsonValue::Bool(false)));
        assert!(parsed.get("traces").unwrap().as_array().unwrap().is_empty());
        assert!(parsed.get("routes").unwrap().as_array().unwrap().is_empty());
        assert!(parsed.get("slos").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn snapshot_json_carries_routes_window_slos_and_exemplars() {
        use crate::slo::SloSpec;
        use crate::stage::Counter;
        use crate::timeseries::{MetricsCumulative, TimeSeries, TimeSeriesConfig};

        let recorder = Recorder::new(ObsConfig::default());
        let latency = crate::Histogram::new();
        let mut series = TimeSeries::new(TimeSeriesConfig {
            resolution_us: 0,
            window_ticks: 4,
        });
        let sample = |at_us: u64, latency: &crate::Histogram| MetricsCumulative {
            at_us,
            counters: Counter::ALL.iter().map(|&c| (c, 0)).collect(),
            service_latency: latency.snapshot(),
        };
        series.tick(sample(0, &latency));
        latency.record_with_exemplar(150, 0x2a);
        series.tick(sample(1_000_000, &latency));

        let mut snapshot = recorder.snapshot();
        snapshot.service_latency = Some(latency.snapshot());
        snapshot.routes = vec![RouteCount {
            graph: "fig1".to_string(),
            algorithm: "dynamic-programming".to_string(),
            requests: 7,
        }];
        snapshot.window = Some(series.window_summary(0));
        snapshot.slos = vec![SloSpec::new("latency-p99", 0.99, 50_000).evaluate(&series)];

        let parsed = JsonValue::parse(&snapshot.to_json()).unwrap();
        let routes = parsed.get("routes").unwrap().as_array().unwrap();
        assert_eq!(routes[0].get("graph").unwrap().as_str(), Some("fig1"));
        assert_eq!(routes[0].get("requests").unwrap().as_u64(), Some(7));
        let window = parsed.get("window").unwrap();
        assert_eq!(window.get("requests").unwrap().as_u64(), Some(1));
        let slos = parsed.get("slos").unwrap().as_array().unwrap();
        assert_eq!(slos[0].get("name").unwrap().as_str(), Some("latency-p99"));
        assert_eq!(slos[0].get("breached"), Some(&JsonValue::Bool(false)));
        let exemplars = parsed
            .get("service_latency")
            .unwrap()
            .get("exemplars")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(exemplars.len(), 1);
        assert_eq!(
            exemplars[0].get("trace").unwrap().as_str(),
            Some("000000000000002a")
        );
    }
}
