//! Exact log-linear histograms (HDR-style) over `u64` values in microseconds.
//!
//! The bucket layout is fixed at compile time: values below
//! [`LINEAR_CUTOFF`] get one bucket each (exact), every octave above is
//! split into 32 sub-buckets, so the relative quantile error is bounded by
//! `1/32` (~3.1%) everywhere. Values at or above 2³⁶ µs (~19 hours)
//! saturate into the top bucket; the exact maximum is tracked separately.
//!
//! Unlike a sampling reservoir, every recorded value lands in its bucket —
//! the histogram is *exact* up to bucket granularity, so tail quantiles
//! (p99, p999) do not degrade as the record count grows. Recording is one
//! relaxed `fetch_add` per counter: lock-free, wait-free, and safe to hammer
//! from any number of threads ([`Histogram`] is `Sync`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in the fixed layout (32 linear + 31 octaves × 32).
pub const BUCKETS: usize = 1024;

/// Values below this get one exact bucket each.
pub(crate) const LINEAR_CUTOFF: u64 = 32;

/// Sub-buckets per octave above the linear range (2^5).
const SUB_BITS: u32 = 5;

/// The bucket a value lands in. Total order: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        return value as usize;
    }
    let octave = 63 - u64::from(value.leading_zeros()); // >= SUB_BITS
    let group = (octave - u64::from(SUB_BITS) + 1) as usize;
    if group > 31 {
        return BUCKETS - 1; // saturate: value >= 2^36
    }
    let sub = ((value >> (octave - u64::from(SUB_BITS))) & 31) as usize;
    group * 32 + sub
}

/// The smallest value that maps to bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    assert!(index < BUCKETS);
    if index < LINEAR_CUTOFF as usize {
        return index as u64;
    }
    let group = index / 32;
    let sub = (index % 32) as u64;
    (32 + sub) << (group - 1)
}

/// A fixed-layout log-linear histogram with lock-free atomic counters.
///
/// All mutation is through `&self`; share it behind an `Arc` (or plain
/// reference) across threads and record concurrently. Totals (`count`,
/// `sum`, `max`) are exact; per-bucket counts are exact; only the *position
/// within a bucket* is quantized.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    /// Most recent non-zero exemplar (a raw trace id) per bucket; `0` means
    /// the bucket has no exemplar yet. Written only by
    /// [`record_with_exemplar`](Histogram::record_with_exemplar).
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (microseconds by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        // lint: ordering-ok(independent monotonic counters; snapshot() documents the off-by-in-flight race)
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // lint: ordering-ok(independent monotonic counters; snapshot() documents the off-by-in-flight race)
        self.count.fetch_add(1, Ordering::Relaxed);
        // lint: ordering-ok(independent monotonic counters; snapshot() documents the off-by-in-flight race)
        self.sum.fetch_add(value, Ordering::Relaxed);
        // lint: ordering-ok(fetch_max is commutative and monotonic; ordering cannot change the final max)
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as saturating whole microseconds.
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one value and, when `exemplar` is non-zero, stamps it as the
    /// bucket's most recent exemplar (a raw trace id) — the link from a
    /// tail-latency bucket to the retained trace that landed there.
    #[inline]
    pub fn record_with_exemplar(&self, value: u64, exemplar: u64) {
        self.record(value);
        if exemplar != 0 {
            // lint: ordering-ok(last-writer-wins diagnostic stamp; any recent exemplar is acceptable)
            self.exemplars[bucket_index(value)].store(exemplar, Ordering::Relaxed);
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        // lint: ordering-ok(statistics read; exact only once writers quiesce, as documented)
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    ///
    /// Buckets are read one by one without a global lock, so a snapshot
    /// racing concurrent `record`s may be off by the in-flight records —
    /// never torn within a counter, and exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                // lint: ordering-ok(per-bucket reads; the doc above states snapshots race in-flight records)
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                // lint: ordering-ok(per-bucket reads; the doc above states snapshots race in-flight records)
                .map(|e| e.load(Ordering::Relaxed))
                .collect(),
            // lint: ordering-ok(per-counter reads; the doc above states snapshots race in-flight records)
            count: self.count.load(Ordering::Relaxed),
            // lint: ordering-ok(per-counter reads; the doc above states snapshots race in-flight records)
            sum: self.sum.load(Ordering::Relaxed),
            // lint: ordering-ok(per-counter reads; the doc above states snapshots race in-flight records)
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    exemplars: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            exemplars: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts (length [`BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The per-bucket exemplars — the raw trace id most recently recorded
    /// into each bucket, `0` where none (length [`BUCKETS`]).
    pub fn bucket_exemplars(&self) -> &[u64] {
        &self.exemplars
    }

    /// Number of recorded values strictly greater than `threshold` that the
    /// bucket layout can prove: only buckets whose *lower* bound exceeds
    /// `threshold` are counted, so values sharing the threshold's bucket are
    /// excluded (an undercount of at most one bucket width — the SLO layer
    /// documents this quantization).
    pub fn count_above(&self, threshold: u64) -> u64 {
        let first = bucket_index(threshold) + 1;
        self.counts[first.min(BUCKETS)..].iter().sum()
    }

    /// Nearest-rank quantile, reported as the lower bound of the bucket the
    /// rank-`⌈q·n⌉` value landed in (`q` in `0.0..=1.0`; `0` when empty).
    ///
    /// Because the bucket order respects the value order, this is the lower
    /// bound of the bucket containing the true nearest-rank value — an
    /// underestimate by at most one bucket width, i.e. a relative error of
    /// at most `1/32` (and exact below the linear cutoff of 32).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_lower(index);
            }
        }
        bucket_lower(BUCKETS - 1)
    }

    /// Adds every counter of `other` into `self`. Merging snapshots of two
    /// histograms is bucket-for-bucket identical to recording both value
    /// streams into one histogram. `other`'s non-zero exemplars win (it is
    /// the later window when merging time-series deltas).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        for (mine, &theirs) in self.exemplars.iter_mut().zip(&other.exemplars) {
            if theirs != 0 {
                *mine = theirs;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The bucket-wise difference `self - earlier` between two cumulative
    /// snapshots of the *same* histogram, `earlier` taken first.
    ///
    /// Counts, count and sum subtract exactly. The maximum is not
    /// subtractive: the delta reports `self`'s max when anything was
    /// recorded in the window and `0` otherwise — a cumulative max is
    /// monotone and unchanged across an empty window, which keeps
    /// delta-then-merge associative (the time-series proptests pin this).
    /// Exemplars carry `self`'s stamps (cumulative exemplars never reset,
    /// so the later snapshot's stamps are the window's freshest links).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(earlier.count);
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(later, first)| later.saturating_sub(*first))
                .collect(),
            exemplars: self.exemplars.clone(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: if count > 0 { self.max } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        // Every bucket's lower bound maps back to that bucket, and lower
        // bounds strictly increase.
        for index in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(index)), index, "index {index}");
            if index > 0 {
                assert!(bucket_lower(index) > bucket_lower(index - 1));
            }
        }
        // The value just below each bucket's lower bound lands in the bucket
        // before it.
        for index in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(index) - 1), index - 1);
        }
    }

    #[test]
    fn saturation_lands_in_the_top_bucket() {
        assert_eq!(bucket_index(1 << 36), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index((1 << 36) - 1), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), bucket_lower(BUCKETS - 1));
        assert_eq!(s.max(), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded_by_one_thirty_second() {
        for index in 32..BUCKETS - 1 {
            let lower = bucket_lower(index);
            let width = bucket_lower(index + 1) - lower;
            assert!(
                width * 32 <= lower,
                "bucket {index}: width {width} lower {lower}"
            );
        }
    }

    #[test]
    fn quantiles_match_reference_on_a_ramp() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.sum(), 10_000 * 10_001 / 2);
        assert_eq!(s.max(), 10_000);
        for (q, expected) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = s.quantile(q);
            assert_eq!(got, bucket_lower(bucket_index(expected)), "q={q}");
            assert!(got <= expected && expected - got <= expected / 32 + 1);
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn exemplars_keep_the_most_recent_stamp_per_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(10, 0xaa);
        h.record_with_exemplar(10, 0xbb);
        h.record_with_exemplar(10, 0); // zero never overwrites
        h.record_with_exemplar(5_000, 0xcc);
        let s = h.snapshot();
        assert_eq!(s.bucket_exemplars()[bucket_index(10)], 0xbb);
        assert_eq!(s.bucket_exemplars()[bucket_index(5_000)], 0xcc);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn count_above_counts_full_buckets_past_the_threshold() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count_above(0), 5);
        assert_eq!(s.count_above(100), 2);
        assert_eq!(s.count_above(10_000), 0);
        assert_eq!(HistogramSnapshot::empty().count_above(0), 0);
    }

    #[test]
    fn delta_since_recovers_exactly_whats_recorded_in_the_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(500);
        let earlier = h.snapshot();
        h.record_with_exemplar(500, 7);
        h.record(9_000);
        let later = h.snapshot();
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 500 + 9_000);
        assert_eq!(delta.max(), later.max());
        assert_eq!(delta.bucket_counts()[bucket_index(10)], 0);
        assert_eq!(delta.bucket_counts()[bucket_index(500)], 1);
        assert_eq!(delta.bucket_counts()[bucket_index(9_000)], 1);
        assert_eq!(delta.bucket_exemplars()[bucket_index(500)], 7);

        // An empty window reports a zero max and zero counts.
        let idle = later.delta_since(&later);
        assert_eq!(idle.count(), 0);
        assert_eq!(idle.max(), 0);

        // delta + earlier merges back to the later cumulative totals.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count(), later.count());
        assert_eq!(rebuilt.sum(), later.sum());
        assert_eq!(rebuilt.bucket_counts(), later.bucket_counts());
    }
}
