//! Process peak-RSS reading for snapshots and benchmarks.

/// Peak resident set size (high-water mark) of this process in bytes, or
/// `None` where the platform doesn't expose it.
///
/// On Linux this reads `VmHWM` from `/proc/self/status` — the kernel's
/// lifetime RSS high-water mark, which is exactly the "peak memory" a
/// scale benchmark should report (a post-build measurement still sees the
/// build-time peak). Other platforms return `None` and exporters emit
/// `null` for the field rather than a fabricated number.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document into bytes.
/// Split from [`peak_rss_bytes`] so the parsing is unit-testable.
pub(crate) fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:      123456 kB" — the kernel always reports kB.
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_vm_hwm_line() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t   4096 kB\nVmRSS:\t 2048 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(4096 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tbench\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_positive_peak() {
        assert!(peak_rss_bytes().unwrap() > 0);
    }
}
