//! Exporters: Prometheus text exposition and the `obs-top` one-shot
//! textual dashboard, both rendered from an [`ObsSnapshot`].
//!
//! The Prometheus format follows text exposition 0.0.4: `# HELP`/`# TYPE`
//! headers, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`, and strictly bounded label cardinality — the only
//! labels ever emitted are the stage name, the counter name, the SLO name,
//! and the per-route `graph`/`algorithm` pair the serving layer already
//! bounds. [`parse_prometheus_text`] is a minimal line-format reader used
//! by [`roundtrip_failures`] (and the exporter proptests) to prove the
//! rendered text re-parses numerically equal to the source snapshot.

use crate::histogram::{bucket_lower, HistogramSnapshot, BUCKETS};
use crate::snapshot::ObsSnapshot;

/// Escapes a label value per the Prometheus text format (backslash,
/// double quote, and newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The cumulative `(le, count)` bucket series for one histogram: inclusive
/// integer upper bounds for every non-empty bucket (the bucketing is exact
/// on integers, so `le = next_lower - 1` loses nothing), with the top
/// bucket folded into the mandatory `+Inf` entry.
fn cumulative_buckets(hist: &HistogramSnapshot) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut cumulative = 0u64;
    for (index, &count) in hist.bucket_counts().iter().enumerate() {
        cumulative += count;
        if count > 0 && index + 1 < BUCKETS {
            out.push(((bucket_lower(index + 1) - 1).to_string(), cumulative));
        }
    }
    out.push(("+Inf".to_string(), cumulative));
    out
}

fn render_histogram_series(out: &mut String, name: &str, labels: &str, hist: &HistogramSnapshot) {
    let extra = if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    };
    for (le, cumulative) in cumulative_buckets(hist) {
        out.push_str(&format!(
            "{name}_bucket{{{extra}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", hist.sum()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", hist.count()));
}

/// Renders the snapshot in Prometheus text-exposition format.
///
/// Emitted families: `preview_counter_total`, `preview_stage_duration_us`
/// (histogram per stage with recorded spans), `preview_request_latency_us`
/// (histogram, when the serving layer supplied one),
/// `preview_requests_total` (per `graph`/`algorithm` route),
/// `preview_peak_rss_bytes`, `preview_window_rate_per_s`, and per-SLO
/// `preview_slo_burn_rate{window="fast"|"slow"}` /
/// `preview_slo_observed_quantile_us` gauges.
pub fn render_prometheus(snapshot: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(8192);

    out.push_str("# HELP preview_counter_total Cumulative event counters.\n");
    out.push_str("# TYPE preview_counter_total counter\n");
    for (counter, value) in &snapshot.counters {
        out.push_str(&format!(
            "preview_counter_total{{counter=\"{}\"}} {value}\n",
            counter.name()
        ));
    }

    out.push_str(
        "# HELP preview_stage_duration_us Span durations per pipeline stage, microseconds.\n",
    );
    out.push_str("# TYPE preview_stage_duration_us histogram\n");
    for (stage, hist) in &snapshot.stages {
        if hist.count() == 0 {
            continue;
        }
        let labels = format!("stage=\"{}\"", stage.name());
        render_histogram_series(&mut out, "preview_stage_duration_us", &labels, hist);
    }

    if let Some(latency) = &snapshot.service_latency {
        out.push_str(
            "# HELP preview_request_latency_us End-to-end request latency, microseconds.\n",
        );
        out.push_str("# TYPE preview_request_latency_us histogram\n");
        render_histogram_series(&mut out, "preview_request_latency_us", "", latency);
    }

    if !snapshot.routes.is_empty() {
        out.push_str("# HELP preview_requests_total Requests completed per graph and algorithm.\n");
        out.push_str("# TYPE preview_requests_total counter\n");
        for route in &snapshot.routes {
            out.push_str(&format!(
                "preview_requests_total{{graph=\"{}\",algorithm=\"{}\"}} {}\n",
                escape_label(&route.graph),
                escape_label(&route.algorithm),
                route.requests
            ));
        }
    }

    if let Some(bytes) = snapshot.peak_rss_bytes {
        out.push_str("# HELP preview_peak_rss_bytes Peak resident set size of the process.\n");
        out.push_str("# TYPE preview_peak_rss_bytes gauge\n");
        out.push_str(&format!("preview_peak_rss_bytes {bytes}\n"));
    }

    if let Some(window) = &snapshot.window {
        out.push_str("# HELP preview_window_rate_per_s Request rate over the metrics window.\n");
        out.push_str("# TYPE preview_window_rate_per_s gauge\n");
        out.push_str(&format!(
            "preview_window_rate_per_s {}\n",
            window.rate_per_s
        ));
    }

    if !snapshot.slos.is_empty() {
        out.push_str("# HELP preview_slo_burn_rate Error-budget burn rate per SLO and window.\n");
        out.push_str("# TYPE preview_slo_burn_rate gauge\n");
        for slo in &snapshot.slos {
            let name = escape_label(&slo.name);
            out.push_str(&format!(
                "preview_slo_burn_rate{{slo=\"{name}\",window=\"fast\"}} {}\n",
                slo.fast_burn
            ));
            out.push_str(&format!(
                "preview_slo_burn_rate{{slo=\"{name}\",window=\"slow\"}} {}\n",
                slo.slow_burn
            ));
        }
        out.push_str(
            "# HELP preview_slo_observed_quantile_us Observed SLO quantile, microseconds.\n",
        );
        out.push_str("# TYPE preview_slo_observed_quantile_us gauge\n");
        for slo in &snapshot.slos {
            out.push_str(&format!(
                "preview_slo_observed_quantile_us{{slo=\"{}\"}} {}\n",
                escape_label(&slo.name),
                slo.observed_quantile_us
            ));
        }
    }

    out
}

/// One sample parsed back from Prometheus text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in emission order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A minimal Prometheus text-format reader: skips comments and blank
/// lines, parses `name{labels} value` samples, and unescapes label values
/// (which may contain `{`, `}`, `,`, and escaped quotes). Rejects
/// malformed lines with a positioned error.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut chars = line.chars().peekable();
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '{' || c == ' ' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if name.is_empty() {
            return Err(format!("line {line_no}: missing metric name"));
        }
        let mut labels = Vec::new();
        if chars.peek() == Some(&'{') {
            chars.next();
            if chars.peek() == Some(&'}') {
                chars.next();
            } else {
                loop {
                    let mut key = String::new();
                    while let Some(&c) = chars.peek() {
                        if c == '=' {
                            break;
                        }
                        key.push(c);
                        chars.next();
                    }
                    if chars.next() != Some('=') {
                        return Err(format!("line {line_no}: label without '='"));
                    }
                    if chars.next() != Some('"') {
                        return Err(format!("line {line_no}: label value must be quoted"));
                    }
                    let mut value = String::new();
                    loop {
                        match chars.next() {
                            Some('\\') => match chars.next() {
                                Some('\\') => value.push('\\'),
                                Some('"') => value.push('"'),
                                Some('n') => value.push('\n'),
                                other => {
                                    return Err(format!("line {line_no}: bad escape {other:?}"))
                                }
                            },
                            Some('"') => break,
                            Some(c) => value.push(c),
                            None => {
                                return Err(format!("line {line_no}: unterminated label value"))
                            }
                        }
                    }
                    labels.push((key.trim().to_string(), value));
                    match chars.next() {
                        Some(',') => continue,
                        Some('}') => break,
                        other => {
                            return Err(format!("line {line_no}: unexpected {other:?} after label"))
                        }
                    }
                }
            }
        }
        let value_text: String = chars.collect();
        let value_text = value_text.trim();
        let value: f64 = value_text
            .parse()
            .map_err(|_| format!("line {line_no}: bad value '{value_text}'"))?;
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

fn find_sample<'a>(
    samples: &'a [PromSample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a PromSample> {
    samples.iter().find(|sample| {
        sample.name == name
            && labels.len() == sample.labels.len()
            && labels.iter().all(|&(k, v)| sample.label(k) == Some(v))
    })
}

fn check_histogram(
    failures: &mut Vec<String>,
    samples: &[PromSample],
    name: &str,
    labels: &[(&str, &str)],
    hist: &HistogramSnapshot,
) {
    let bucket_name = format!("{name}_bucket");
    let mut previous = 0.0f64;
    for (le, cumulative) in cumulative_buckets(hist) {
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", &le));
        match find_sample(samples, &bucket_name, &with_le) {
            Some(sample) => {
                if sample.value != cumulative as f64 {
                    failures.push(format!(
                        "{bucket_name}{labels:?} le={le}: parsed {} != snapshot {cumulative}",
                        sample.value
                    ));
                }
                if sample.value < previous {
                    failures.push(format!(
                        "{bucket_name}{labels:?} le={le}: cumulative buckets not monotone"
                    ));
                }
                previous = sample.value;
            }
            None => failures.push(format!("{bucket_name}{labels:?} le={le}: sample missing")),
        }
    }
    for (suffix, expected) in [("_sum", hist.sum()), ("_count", hist.count())] {
        let series = format!("{name}{suffix}");
        match find_sample(samples, &series, labels) {
            Some(sample) if sample.value == expected as f64 => {}
            Some(sample) => failures.push(format!(
                "{series}{labels:?}: parsed {} != snapshot {expected}",
                sample.value
            )),
            None => failures.push(format!("{series}{labels:?}: sample missing")),
        }
    }
}

/// Renders the snapshot to Prometheus text, re-parses it, and compares
/// every sample numerically against the source snapshot — counters,
/// cumulative bucket series (including monotonicity), sums and counts,
/// routes, peak RSS, and SLO gauges. Returns human-readable mismatch
/// descriptions; empty means the export round-trips exactly. Shared by the
/// exporter proptests and `obs-bench --check`.
pub fn roundtrip_failures(snapshot: &ObsSnapshot) -> Vec<String> {
    let text = render_prometheus(snapshot);
    let samples = match parse_prometheus_text(&text) {
        Ok(samples) => samples,
        Err(error) => return vec![format!("export did not re-parse: {error}")],
    };
    let mut failures = Vec::new();

    for &(counter, value) in &snapshot.counters {
        let labels = [("counter", counter.name())];
        match find_sample(&samples, "preview_counter_total", &labels) {
            Some(sample) if sample.value == value as f64 => {}
            Some(sample) => failures.push(format!(
                "counter {}: parsed {} != snapshot {value}",
                counter.name(),
                sample.value
            )),
            None => failures.push(format!("counter {}: sample missing", counter.name())),
        }
    }

    for (stage, hist) in &snapshot.stages {
        if hist.count() == 0 {
            continue;
        }
        check_histogram(
            &mut failures,
            &samples,
            "preview_stage_duration_us",
            &[("stage", stage.name())],
            hist,
        );
    }

    if let Some(latency) = &snapshot.service_latency {
        check_histogram(
            &mut failures,
            &samples,
            "preview_request_latency_us",
            &[],
            latency,
        );
    }

    for route in &snapshot.routes {
        let labels = [
            ("graph", route.graph.as_str()),
            ("algorithm", route.algorithm.as_str()),
        ];
        match find_sample(&samples, "preview_requests_total", &labels) {
            Some(sample) if sample.value == route.requests as f64 => {}
            Some(sample) => failures.push(format!(
                "route {}/{}: parsed {} != snapshot {}",
                route.graph, route.algorithm, sample.value, route.requests
            )),
            None => failures.push(format!(
                "route {}/{}: sample missing",
                route.graph, route.algorithm
            )),
        }
    }

    if let Some(bytes) = snapshot.peak_rss_bytes {
        match find_sample(&samples, "preview_peak_rss_bytes", &[]) {
            Some(sample) if sample.value == bytes as f64 => {}
            _ => failures.push("peak_rss_bytes missing or mismatched".to_string()),
        }
    }

    for slo in &snapshot.slos {
        for (window, expected) in [("fast", slo.fast_burn), ("slow", slo.slow_burn)] {
            let labels = [("slo", slo.name.as_str()), ("window", window)];
            match find_sample(&samples, "preview_slo_burn_rate", &labels) {
                Some(sample) if sample.value == expected => {}
                _ => failures.push(format!(
                    "slo {} {window} burn missing or mismatched",
                    slo.name
                )),
            }
        }
    }

    failures
}

/// Renders a one-shot `obs-top` textual dashboard: per-stage latency
/// table, non-zero counters, window rates, SLO burn lines, and the
/// retained trace trees. This is the `--top` output of `obs-bench`.
pub fn render_top(snapshot: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "preview obs-top  enabled={}  events={}\n\n",
        snapshot.enabled, snapshot.events_recorded
    ));
    out.push_str(&format!(
        "{:<18} {:>9} {:>10} {:>10} {:>10}\n",
        "STAGE", "COUNT", "P50_US", "P99_US", "MAX_US"
    ));
    for (stage, hist) in &snapshot.stages {
        if hist.count() == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<18} {:>9} {:>10} {:>10} {:>10}\n",
            stage.name(),
            hist.count(),
            hist.quantile(0.5),
            hist.quantile(0.99),
            hist.max()
        ));
    }

    let live: Vec<String> = snapshot
        .counters
        .iter()
        .filter(|&&(_, value)| value > 0)
        .map(|(counter, value)| format!("{}={value}", counter.name()))
        .collect();
    if !live.is_empty() {
        out.push_str(&format!("\ncounters: {}\n", live.join(" ")));
    }

    if let Some(window) = &snapshot.window {
        out.push_str(&format!(
            "\nwindow: ticks={} requests={} rate={:.1}/s p50={}us p99={}us\n",
            window.ticks,
            window.requests,
            window.rate_per_s,
            window.quantile(0.5),
            window.quantile(0.99)
        ));
    }

    for slo in &snapshot.slos {
        out.push_str(&format!(
            "slo {}: observed={}us threshold={}us fast_burn={:.2} slow_burn={:.2} [{}]\n",
            slo.name,
            slo.observed_quantile_us,
            slo.threshold_us,
            slo.fast_burn,
            slo.slow_burn,
            if slo.breached { "BREACH" } else { "ok" }
        ));
    }

    out.push_str(&format!("\ntraces retained: {}\n", snapshot.traces.len()));
    for tree in &snapshot.traces {
        let reasons: Vec<&str> = tree.reasons.iter().map(|r| r.name()).collect();
        let total = tree.root().map(|root| root.duration_us).unwrap_or(0);
        out.push_str(&format!(
            "  {} [{}] spans={} total={}us {}\n",
            tree.trace,
            reasons.join("+"),
            tree.spans.len(),
            total,
            tree.detail
        ));
    }
    out
}

/// Convenience: true when every counter the snapshot carries is zero and
/// no stage recorded anything (used by `obs-top` callers to warn when the
/// recorder was never enabled).
pub fn snapshot_is_blank(snapshot: &ObsSnapshot) -> bool {
    snapshot.counters.iter().all(|&(_, value)| value == 0)
        && snapshot.stages.iter().all(|(_, hist)| hist.count() == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::snapshot::RouteCount;
    use crate::stage::{Counter, Stage};

    fn snapshot_with_data() -> ObsSnapshot {
        let recorder = Recorder::new(ObsConfig::default());
        recorder.record_span(Stage::Discovery, 1, 10, 250, 3);
        recorder.record_span(Stage::Request, 0, 0, 1_000, 0);
        recorder.add_counter(Counter::Publishes, 2);
        let mut snapshot = recorder.snapshot();
        let latency = crate::Histogram::new();
        latency.record(120);
        latency.record(80_000);
        snapshot.service_latency = Some(latency.snapshot());
        snapshot.routes = vec![RouteCount {
            graph: "fig\"1\\n".to_string(),
            algorithm: "dynamic-programming".to_string(),
            requests: 2,
        }];
        snapshot
    }

    #[test]
    fn export_roundtrips_numerically() {
        let snapshot = snapshot_with_data();
        assert_eq!(roundtrip_failures(&snapshot), Vec::<String>::new());
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let snapshot = snapshot_with_data();
        let text = render_prometheus(&snapshot);
        assert!(text.contains("graph=\"fig\\\"1\\\\n\""));
        let samples = parse_prometheus_text(&text).unwrap();
        let route = samples
            .iter()
            .find(|s| s.name == "preview_requests_total")
            .unwrap();
        assert_eq!(route.label("graph"), Some("fig\"1\\n"));
    }

    #[test]
    fn empty_stages_are_omitted_and_inf_bucket_always_present() {
        let snapshot = snapshot_with_data();
        let text = render_prometheus(&snapshot);
        assert!(!text.contains("stage=\"publish\""));
        assert!(text.contains("stage=\"discovery\",le=\"+Inf\""));
        assert!(text.contains("# TYPE preview_stage_duration_us histogram"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("metric{oops} 1").is_err());
        assert!(parse_prometheus_text("metric{a=\"b} 1").is_err());
        assert!(parse_prometheus_text("metric notanumber").is_err());
        assert!(parse_prometheus_text("# just a comment\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn top_renders_stages_and_traces() {
        let snapshot = snapshot_with_data();
        let top = render_top(&snapshot);
        assert!(top.contains("STAGE"));
        assert!(top.contains("discovery"));
        assert!(top.contains("counters: publishes=2"));
        assert!(top.contains("traces retained: 0"));
        assert!(!snapshot_is_blank(&snapshot));
        assert!(snapshot_is_blank(&Recorder::default().snapshot()));
    }
}
