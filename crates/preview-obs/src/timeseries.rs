//! Windowed time-series metrics: a bounded ring of periodic snapshot
//! deltas.
//!
//! The aggregate [`Histogram`](crate::Histogram)s and counters are
//! cumulative since process start — good for totals, useless for "is the
//! p99 burning *right now*". This module turns periodic cumulative samples
//! ([`MetricsCumulative`], stamped with the recorder's monotonic epoch
//! clock) into per-tick deltas ([`TickDelta`]) kept in a bounded window,
//! from which [`WindowSummary`] derives rates and sliding-window quantiles
//! and the [`slo`](crate::slo) layer derives burn rates.
//!
//! Delta-merge round-trips exactly: merging every tick of a window
//! reproduces the histogram recorded over that window bucket-for-bucket
//! (the time-series proptests pin associativity and eviction exactness).

use std::collections::VecDeque;

use crate::histogram::HistogramSnapshot;
use crate::json::write_json_f64;
use crate::stage::Counter;

/// Configuration for a [`TimeSeries`] ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Minimum spacing between ticks accepted by [`TimeSeries::offer`],
    /// in microseconds of the sample clock.
    pub resolution_us: u64,
    /// Number of most-recent ticks retained (the sliding window).
    pub window_ticks: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            resolution_us: 1_000_000,
            window_ticks: 60,
        }
    }
}

/// One cumulative metrics sample: counters and the service-latency
/// histogram as of `at_us` on the recorder's monotonic epoch clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsCumulative {
    /// Sample instant, microseconds since the recorder epoch.
    pub at_us: u64,
    /// Cumulative counter values, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Cumulative service-latency histogram.
    pub service_latency: HistogramSnapshot,
}

/// The delta between two consecutive cumulative samples: what happened
/// during one tick of the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickDelta {
    /// Tick start, microseconds since the recorder epoch.
    pub start_us: u64,
    /// Tick end, microseconds since the recorder epoch.
    pub end_us: u64,
    /// Counter increments during the tick, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Service latency recorded during the tick.
    pub service_latency: HistogramSnapshot,
}

/// A bounded ring of [`TickDelta`]s built from periodic cumulative samples.
///
/// The first sample is the baseline and produces no tick; each later
/// sample closes one tick covering the interval since the previous sample.
/// Sample clocks are clamped monotone, so a caller replaying stale
/// timestamps cannot produce negative intervals.
#[derive(Debug)]
pub struct TimeSeries {
    config: TimeSeriesConfig,
    last: Option<MetricsCumulative>,
    ticks: VecDeque<TickDelta>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new(TimeSeriesConfig::default())
    }
}

impl TimeSeries {
    /// An empty series with the given configuration (window clamped ≥ 1).
    pub fn new(mut config: TimeSeriesConfig) -> TimeSeries {
        config.window_ticks = config.window_ticks.max(1);
        TimeSeries {
            config,
            last: None,
            ticks: VecDeque::new(),
        }
    }

    /// The configuration this series was built with.
    pub fn config(&self) -> &TimeSeriesConfig {
        &self.config
    }

    /// Ingests a cumulative sample unconditionally. Returns whether a tick
    /// was produced (the first sample only establishes the baseline).
    pub fn tick(&mut self, mut sample: MetricsCumulative) -> bool {
        let Some(last) = self.last.take() else {
            self.last = Some(sample);
            return false;
        };
        sample.at_us = sample.at_us.max(last.at_us);
        let counters = sample
            .counters
            .iter()
            .zip(&last.counters)
            .map(|(&(counter, later), &(_, earlier))| (counter, later.saturating_sub(earlier)))
            .collect();
        self.ticks.push_back(TickDelta {
            start_us: last.at_us,
            end_us: sample.at_us,
            counters,
            service_latency: sample.service_latency.delta_since(&last.service_latency),
        });
        while self.ticks.len() > self.config.window_ticks {
            self.ticks.pop_front();
        }
        self.last = Some(sample);
        true
    }

    /// [`tick`](TimeSeries::tick), but only when at least
    /// [`resolution_us`](TimeSeriesConfig::resolution_us) has elapsed since
    /// the previous sample (the first sample is always accepted as the
    /// baseline). Returns whether a tick was produced.
    pub fn offer(&mut self, sample: MetricsCumulative) -> bool {
        match &self.last {
            None => {
                self.last = Some(sample);
                false
            }
            Some(last) if sample.at_us.saturating_sub(last.at_us) >= self.config.resolution_us => {
                self.tick(sample)
            }
            Some(_) => false,
        }
    }

    /// Number of ticks currently in the window.
    pub fn tick_count(&self) -> usize {
        self.ticks.len()
    }

    /// The retained ticks, oldest first.
    pub fn ticks(&self) -> impl Iterator<Item = &TickDelta> {
        self.ticks.iter()
    }

    /// Summarises the most recent `last_n` ticks (`0` means the whole
    /// window): merged latency, summed counters, and the request rate.
    pub fn window_summary(&self, last_n: usize) -> WindowSummary {
        let take = if last_n == 0 {
            self.ticks.len()
        } else {
            last_n.min(self.ticks.len())
        };
        let skip = self.ticks.len() - take;
        let mut latency = HistogramSnapshot::empty();
        let mut counters: Vec<(Counter, u64)> =
            Counter::ALL.iter().map(|&counter| (counter, 0)).collect();
        let mut span_us = 0u64;
        for tick in self.ticks.iter().skip(skip) {
            latency.merge(&tick.service_latency);
            span_us = span_us.saturating_add(tick.end_us.saturating_sub(tick.start_us));
            for (total, &(_, delta)) in counters.iter_mut().zip(&tick.counters) {
                total.1 = total.1.saturating_add(delta);
            }
        }
        let requests = latency.count();
        let rate_per_s = if span_us > 0 {
            requests as f64 / (span_us as f64 / 1_000_000.0)
        } else {
            0.0
        };
        WindowSummary {
            ticks: take,
            span_us,
            requests,
            rate_per_s,
            latency,
            counters,
        }
    }
}

/// Rates, counters, and the merged latency histogram over a window of
/// ticks. Produced by [`TimeSeries::window_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Number of ticks summarised.
    pub ticks: usize,
    /// Total wall span covered, microseconds.
    pub span_us: u64,
    /// Completed requests in the window.
    pub requests: u64,
    /// Requests per second over the window span.
    pub rate_per_s: f64,
    /// Service latency recorded in the window.
    pub latency: HistogramSnapshot,
    /// Counter increments in the window, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
}

impl WindowSummary {
    /// Sliding-window latency quantile (microseconds, nearest-rank on
    /// histogram buckets).
    pub fn quantile(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"ticks\":{},\"span_us\":{},\"requests\":{},\"rate_per_s\":",
            self.ticks, self.span_us, self.requests
        );
        write_json_f64(&mut out, self.rate_per_s);
        out.push_str(&format!(
            ",\"p50_us\":{},\"p99_us\":{},\"counters\":{{",
            self.quantile(0.5),
            self.quantile(0.99)
        ));
        for (index, (counter, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", counter.name(), value));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample(at_us: u64, hist: &Histogram, publishes: u64) -> MetricsCumulative {
        MetricsCumulative {
            at_us,
            counters: Counter::ALL
                .iter()
                .map(|&counter| {
                    let value = if counter == Counter::Publishes {
                        publishes
                    } else {
                        0
                    };
                    (counter, value)
                })
                .collect(),
            service_latency: hist.snapshot(),
        }
    }

    #[test]
    fn first_sample_is_a_baseline_and_later_samples_close_ticks() {
        let hist = Histogram::new();
        let mut series = TimeSeries::default();
        assert!(!series.tick(sample(0, &hist, 0)));
        hist.record(100);
        hist.record(200);
        assert!(series.tick(sample(1_000_000, &hist, 3)));
        assert_eq!(series.tick_count(), 1);
        let tick = series.ticks().next().unwrap();
        assert_eq!((tick.start_us, tick.end_us), (0, 1_000_000));
        assert_eq!(tick.service_latency.count(), 2);
        assert_eq!(tick.counters[Counter::Publishes as usize].1, 3);
    }

    #[test]
    fn offer_respects_the_resolution_gate() {
        let hist = Histogram::new();
        let mut series = TimeSeries::new(TimeSeriesConfig {
            resolution_us: 1_000,
            window_ticks: 8,
        });
        assert!(!series.offer(sample(0, &hist, 0)), "baseline");
        assert!(!series.offer(sample(500, &hist, 0)), "too soon");
        assert!(series.offer(sample(1_500, &hist, 0)));
        assert!(!series.offer(sample(1_600, &hist, 0)));
        assert_eq!(series.tick_count(), 1);
    }

    #[test]
    fn window_evicts_exactly_to_capacity_and_summaries_merge() {
        let hist = Histogram::new();
        let mut series = TimeSeries::new(TimeSeriesConfig {
            resolution_us: 0,
            window_ticks: 3,
        });
        series.tick(sample(0, &hist, 0));
        for step in 1..=5u64 {
            hist.record(step * 10);
            series.tick(sample(step * 1_000, &hist, step));
        }
        assert_eq!(series.tick_count(), 3, "exactly the newest three ticks");
        let starts: Vec<u64> = series.ticks().map(|t| t.start_us).collect();
        assert_eq!(starts, vec![2_000, 3_000, 4_000]);

        let window = series.window_summary(0);
        assert_eq!(window.ticks, 3);
        assert_eq!(window.span_us, 3_000);
        assert_eq!(window.requests, 3, "one recording per retained tick");
        assert_eq!(window.counters[Counter::Publishes as usize].1, 3);
        assert!((window.rate_per_s - 1_000.0).abs() < 1e-9);
        assert_eq!(window.latency.max(), hist.snapshot().max());

        let fast = series.window_summary(1);
        assert_eq!(fast.ticks, 1);
        assert_eq!(fast.requests, 1);
        let json = window.to_json();
        assert!(json.contains("\"requests\":3"));
        assert!(json.contains("\"publishes\":3"));
    }

    #[test]
    fn stale_sample_clocks_are_clamped_monotone() {
        let hist = Histogram::new();
        let mut series = TimeSeries::default();
        series.tick(sample(5_000, &hist, 0));
        assert!(series.tick(sample(1_000, &hist, 0)), "clamped, not dropped");
        let tick = series.ticks().next().unwrap();
        assert_eq!((tick.start_us, tick.end_us), (5_000, 5_000));
    }
}
