//! Latency SLO specifications and multi-window burn-rate evaluation.
//!
//! An [`SloSpec`] states an objective such as "99% of requests complete
//! within 50 ms". Evaluated against a [`TimeSeries`], it yields an
//! [`SloStatus`] with two burn rates in the style of error-budget
//! alerting: the **slow** burn over the whole retained window (is the
//! budget being spent faster than sustainable?) and the **fast** burn over
//! the most recent quarter of the window (is it burning *right now*?).
//! A burn rate of `1.0` spends the budget exactly at the objective;
//! [`SloStatus::breached`] requires both windows above `1.0`, which keeps
//! a single slow tick from paging while still catching sustained burns
//! quickly.

use crate::json::write_json_f64;
use crate::timeseries::TimeSeries;

/// A latency service-level objective: "`objective` of requests complete
/// within `threshold_us`", with `quantile` naming the tracked percentile.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Human-readable name, used as the `slo` label in exports.
    pub name: String,
    /// The tracked latency quantile (e.g. `0.99`).
    pub quantile: f64,
    /// The latency threshold in microseconds.
    pub threshold_us: u64,
    /// Fraction of requests that must meet the threshold (defaults to
    /// `quantile`, the usual "p99 under X" reading).
    pub objective: f64,
}

impl SloSpec {
    /// An SLO tracking `quantile` against `threshold_us`, with the
    /// objective defaulting to the quantile itself.
    pub fn new(name: &str, quantile: f64, threshold_us: u64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            quantile,
            threshold_us,
            objective: quantile,
        }
    }

    /// Returns the spec with a different objective fraction.
    pub fn with_objective(mut self, objective: f64) -> SloSpec {
        self.objective = objective;
        self
    }

    /// Evaluates the spec against the series' current window.
    pub fn evaluate(&self, series: &TimeSeries) -> SloStatus {
        let slow = series.window_summary(0);
        let fast = series.window_summary((series.tick_count() / 4).max(1));
        let bad_fraction = |summary: &crate::timeseries::WindowSummary| {
            if summary.requests == 0 {
                0.0
            } else {
                summary.latency.count_above(self.threshold_us) as f64 / summary.requests as f64
            }
        };
        let fast_bad_fraction = bad_fraction(&fast);
        let slow_bad_fraction = bad_fraction(&slow);
        // The error budget is the allowed bad fraction; clamp away zero so
        // a 100% objective still yields finite burn rates.
        let budget = (1.0 - self.objective).max(1e-9);
        let fast_burn = fast_bad_fraction / budget;
        let slow_burn = slow_bad_fraction / budget;
        let observed_quantile_us = slow.quantile(self.quantile);
        SloStatus {
            name: self.name.clone(),
            threshold_us: self.threshold_us,
            objective: self.objective,
            observed_quantile_us,
            met: observed_quantile_us <= self.threshold_us,
            fast_bad_fraction,
            slow_bad_fraction,
            fast_burn,
            slow_burn,
            breached: fast_burn > 1.0 && slow_burn > 1.0,
        }
    }
}

/// The result of evaluating an [`SloSpec`] against a window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's latency threshold in microseconds.
    pub threshold_us: u64,
    /// The spec's objective fraction.
    pub objective: f64,
    /// The tracked quantile observed over the whole window, microseconds.
    pub observed_quantile_us: u64,
    /// Whether the observed quantile currently meets the threshold.
    pub met: bool,
    /// Fraction of requests over threshold in the fast (recent) window.
    pub fast_bad_fraction: f64,
    /// Fraction of requests over threshold in the slow (whole) window.
    pub slow_bad_fraction: f64,
    /// Budget burn rate in the fast window (`1.0` = spending exactly at
    /// the objective).
    pub fast_burn: f64,
    /// Budget burn rate in the slow window.
    pub slow_burn: f64,
    /// Whether both windows burn above `1.0` (the paging condition).
    pub breached: bool,
}

impl SloStatus {
    /// Renders the status as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"name\":");
        crate::json::write_json_string(&mut out, &self.name);
        out.push_str(&format!(
            ",\"threshold_us\":{},\"objective\":",
            self.threshold_us
        ));
        write_json_f64(&mut out, self.objective);
        out.push_str(&format!(
            ",\"observed_quantile_us\":{},\"met\":{},\"fast_burn\":",
            self.observed_quantile_us, self.met
        ));
        write_json_f64(&mut out, self.fast_burn);
        out.push_str(",\"slow_burn\":");
        write_json_f64(&mut out, self.slow_burn);
        out.push_str(&format!(",\"breached\":{}}}", self.breached));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::stage::Counter;
    use crate::timeseries::{MetricsCumulative, TimeSeriesConfig};

    fn sample(at_us: u64, hist: &Histogram) -> MetricsCumulative {
        MetricsCumulative {
            at_us,
            counters: Counter::ALL.iter().map(|&c| (c, 0)).collect(),
            service_latency: hist.snapshot(),
        }
    }

    #[test]
    fn a_healthy_window_shows_zero_burn() {
        let hist = Histogram::new();
        let mut series = TimeSeries::new(TimeSeriesConfig {
            resolution_us: 0,
            window_ticks: 8,
        });
        series.tick(sample(0, &hist));
        for step in 1..=4u64 {
            hist.record(1_000);
            series.tick(sample(step * 1_000_000, &hist));
        }
        let status = SloSpec::new("latency-p99", 0.99, 50_000).evaluate(&series);
        assert!(status.met);
        assert_eq!(status.fast_burn, 0.0);
        assert_eq!(status.slow_burn, 0.0);
        assert!(!status.breached);
    }

    #[test]
    fn a_slow_tail_flips_the_burn_rate_positive_and_breaches() {
        let hist = Histogram::new();
        let mut series = TimeSeries::new(TimeSeriesConfig {
            resolution_us: 0,
            window_ticks: 8,
        });
        series.tick(sample(0, &hist));
        hist.record(1_000);
        series.tick(sample(1_000_000, &hist));
        let before = SloSpec::new("latency-p99", 0.99, 50_000).evaluate(&series);
        assert_eq!(before.slow_burn, 0.0);

        // One violating request in the newest tick: 1 bad of 2 total is a
        // 50% bad fraction against a 1% budget — a 50x burn in both
        // windows (the fast window is the most recent quarter, which holds
        // the violating tick).
        hist.record(400_000);
        series.tick(sample(2_000_000, &hist));
        let spec = SloSpec::new("latency-p99", 0.99, 50_000);
        let after = spec.evaluate(&series);
        assert!(after.slow_burn > 1.0);
        assert!(after.fast_burn > 1.0);
        assert!(after.breached);
        assert!(!after.met);
        assert!(after.observed_quantile_us > 50_000);
        let json = after.to_json();
        assert!(json.contains("\"name\":\"latency-p99\""));
        assert!(json.contains("\"breached\":true"));
    }

    #[test]
    fn an_empty_series_is_met_with_zero_burns() {
        let series = TimeSeries::default();
        let status = SloSpec::new("latency-p99", 0.99, 1).evaluate(&series);
        assert!(status.met);
        assert!(!status.breached);
        assert_eq!(status.observed_quantile_us, 0);
    }
}
