//! Minimal JSON support: an escaping string writer for the exporters and a
//! small recursive-descent parser used by `obs-bench --check` to validate
//! snapshot output.
//!
//! The workspace's vendored `serde` is a marker-trait stand-in with no
//! serialisation logic, so both directions are hand-written here. The parser
//! supports the full JSON grammar the exporters emit (objects, arrays,
//! strings with escapes, numbers, booleans, null); numbers are kept as `f64`
//! which is lossless for every count this crate exports below 2⁵³.

use std::collections::BTreeMap;

/// Appends `value` to `out` as a JSON string literal (quoted, escaped).
pub fn write_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` in JSON number syntax (`null` for non-finite).
pub fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly below 2⁵³).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        // Surrogates are not emitted by our exporters;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let ch = text.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let mut doc = String::from("{\"key\":");
        write_json_string(&mut doc, nasty);
        doc.push('}');
        let parsed = JsonValue::parse(&doc).unwrap();
        assert_eq!(parsed.get("key").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x"}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        let mut out = String::new();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        write_json_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
    }
}
