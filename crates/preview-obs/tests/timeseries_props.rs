//! Property tests for the windowed time-series ring: delta-merge
//! associativity (merging per-tick deltas reproduces the cumulative
//! difference exactly, however the stream is split) and window eviction
//! exactness (the ring retains precisely the newest `window_ticks` ticks).
//!
//! The vendored proptest supports integer-range strategies only, so the
//! sample streams are derived from a proptest-chosen seed via `ChaCha8Rng`.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use preview_obs::{
    Counter, Histogram, HistogramSnapshot, MetricsCumulative, TimeSeries, TimeSeriesConfig,
};

/// A monotone stream of cumulative samples: one shared histogram and
/// counter vector that only grow, snapshotted at increasing instants.
fn cumulative_stream(seed: u64, ticks: usize) -> Vec<MetricsCumulative> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hist = Histogram::new();
    let mut counters: Vec<(Counter, u64)> = Counter::ALL.iter().map(|&c| (c, 0)).collect();
    let mut at_us = 0u64;
    let mut stream = Vec::with_capacity(ticks + 1);
    for _ in 0..=ticks {
        stream.push(MetricsCumulative {
            at_us,
            counters: counters.clone(),
            service_latency: hist.snapshot(),
        });
        at_us += rng.gen_range(1u64..2_000_000);
        for _ in 0..rng.gen_range(0usize..20) {
            let exp = rng.gen_range(0u32..24);
            hist.record_with_exemplar(rng.gen_range(0..=(1u64 << exp)), rng.gen_range(1u64..999));
        }
        for entry in counters.iter_mut() {
            entry.1 += rng.gen_range(0u64..50);
        }
    }
    stream
}

fn series_with(window_ticks: usize) -> TimeSeries {
    TimeSeries::new(TimeSeriesConfig {
        resolution_us: 0,
        window_ticks,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging every retained tick delta reproduces the cumulative
    /// difference between the last sample and the baseline exactly —
    /// counts, sums, bucket vectors, and counters — regardless of how many
    /// intermediate samples the stream was cut into.
    #[test]
    fn delta_merge_is_associative(seed in 0u64..10_000, ticks in 1usize..40) {
        let stream = cumulative_stream(seed, ticks);
        let mut series = series_with(ticks + 1);
        for sample in &stream {
            series.tick(sample.clone());
        }
        prop_assert_eq!(series.tick_count(), ticks);

        let mut merged = HistogramSnapshot::empty();
        for tick in series.ticks() {
            merged.merge(&tick.service_latency);
        }
        let first = &stream[0];
        let last = &stream[stream.len() - 1];
        let direct = last.service_latency.delta_since(&first.service_latency);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        prop_assert_eq!(merged.bucket_counts(), direct.bucket_counts());

        // Counter deltas telescope the same way.
        let window = series.window_summary(0);
        for (index, &(_, total)) in window.counters.iter().enumerate() {
            let expected = last.counters[index].1 - first.counters[index].1;
            prop_assert_eq!(total, expected);
        }

        // The same stream cut at any single midpoint merges to the same
        // totals: (a..m merged) + (m..z merged) == a..z.
        let mid = 1 + (seed as usize % ticks.max(1));
        let mut left = HistogramSnapshot::empty();
        let mut right = HistogramSnapshot::empty();
        for (index, tick) in series.ticks().enumerate() {
            if index < mid {
                left.merge(&tick.service_latency);
            } else {
                right.merge(&tick.service_latency);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(left.count(), direct.count());
        prop_assert_eq!(left.sum(), direct.sum());
    }

    /// The ring retains exactly the newest `window_ticks` ticks: count,
    /// identity (start/end instants), and the merged window equal to the
    /// cumulative difference from the eviction horizon.
    #[test]
    fn window_eviction_is_exact(
        seed in 0u64..10_000,
        ticks in 1usize..40,
        window in 1usize..12,
    ) {
        let stream = cumulative_stream(seed, ticks);
        let mut series = series_with(window);
        for sample in &stream {
            series.tick(sample.clone());
        }
        let kept = ticks.min(window);
        prop_assert_eq!(series.tick_count(), kept);

        // Retained ticks are precisely the newest ones, in order.
        let expected_bounds: Vec<(u64, u64)> = (ticks - kept..ticks)
            .map(|index| (stream[index].at_us, stream[index + 1].at_us))
            .collect();
        let actual_bounds: Vec<(u64, u64)> = series
            .ticks()
            .map(|tick| (tick.start_us, tick.end_us))
            .collect();
        prop_assert_eq!(actual_bounds, expected_bounds);

        // And the window summary equals the cumulative delta from the
        // eviction horizon — nothing older leaks in, nothing newer is lost.
        let horizon = &stream[ticks - kept];
        let last = &stream[stream.len() - 1];
        let direct = last.service_latency.delta_since(&horizon.service_latency);
        let window_summary = series.window_summary(0);
        prop_assert_eq!(window_summary.requests, direct.count());
        prop_assert_eq!(window_summary.latency.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(
            window_summary.span_us,
            last.at_us - horizon.at_us
        );
    }
}
