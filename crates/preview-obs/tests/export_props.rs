//! Property tests for the Prometheus text exporter: render → parse with
//! the minimal line-format reader → numeric comparison against the source
//! snapshot, label-value escaping round-trips, and cumulative bucket
//! monotonicity checked independently of emission order.
//!
//! The vendored proptest supports integer-range strategies only, so all
//! randomness is derived from a proptest-chosen seed via `ChaCha8Rng`.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use preview_obs::{
    parse_prometheus_text, render_prometheus, roundtrip_failures, Counter, Histogram, ObsConfig,
    Recorder, RouteCount, SloStatus, Stage,
};

/// Characters deliberately including everything the text format must
/// escape or that could confuse a naive splitter.
const LABEL_ALPHABET: &[char] = &[
    'a', 'b', 'z', '0', '-', '_', '.', ' ', '"', '\\', '\n', '{', '}', ',', '=',
];

fn random_label(rng: &mut ChaCha8Rng) -> String {
    let len = rng.gen_range(1usize..12);
    (0..len)
        .map(|_| LABEL_ALPHABET[rng.gen_range(0..LABEL_ALPHABET.len())])
        .collect()
}

/// A snapshot with random per-stage recordings, counters, service
/// latency, hostile route labels, and directly-constructed SLO statuses.
fn random_snapshot(seed: u64) -> preview_obs::ObsSnapshot {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let recorder = Recorder::new(ObsConfig::default());
    for _ in 0..rng.gen_range(0usize..200) {
        let stage = Stage::ALL[rng.gen_range(0..Stage::ALL.len())];
        let exp = rng.gen_range(0u32..30);
        recorder.record_span(stage, 0, 0, rng.gen_range(0..=(1u64 << exp)), 0);
    }
    for _ in 0..rng.gen_range(0usize..20) {
        let counter = Counter::ALL[rng.gen_range(0..Counter::ALL.len())];
        recorder.add_counter(counter, rng.gen_range(0u64..1_000));
    }
    let mut snapshot = recorder.snapshot();

    if rng.gen_range(0u32..4) > 0 {
        let latency = Histogram::new();
        for _ in 0..rng.gen_range(1usize..100) {
            latency.record_with_exemplar(rng.gen_range(0u64..10_000_000), rng.gen_range(1u64..99));
        }
        snapshot.service_latency = Some(latency.snapshot());
    }

    for _ in 0..rng.gen_range(0usize..4) {
        snapshot.routes.push(RouteCount {
            graph: random_label(&mut rng),
            algorithm: random_label(&mut rng),
            requests: rng.gen_range(0u64..100_000),
        });
    }

    for index in 0..rng.gen_range(0usize..3) {
        let fast = rng.gen_range(0u64..5_000) as f64 / 100.0;
        let slow = rng.gen_range(0u64..5_000) as f64 / 100.0;
        snapshot.slos.push(SloStatus {
            name: format!("slo-{index}-{}", random_label(&mut rng)),
            threshold_us: rng.gen_range(1u64..1_000_000),
            objective: 0.99,
            observed_quantile_us: rng.gen_range(0u64..1_000_000),
            met: fast <= 1.0,
            fast_bad_fraction: fast / 100.0,
            slow_bad_fraction: slow / 100.0,
            fast_burn: fast,
            slow_burn: slow,
            breached: fast > 1.0 && slow > 1.0,
        });
    }
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full export re-parses numerically equal to the snapshot it was
    /// rendered from: every counter, cumulative bucket, sum, count, route,
    /// and SLO gauge.
    #[test]
    fn export_roundtrips_numerically(seed in 0u64..10_000) {
        let snapshot = random_snapshot(seed);
        let failures = roundtrip_failures(&snapshot);
        prop_assert!(failures.is_empty(), "round-trip failures: {:?}", failures);
    }

    /// Hostile label values (quotes, backslashes, newlines, braces,
    /// commas) survive the escape/unescape round-trip byte-for-byte, and
    /// duplicate routes aside, every emitted route is recovered.
    #[test]
    fn label_escaping_round_trips(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let recorder = Recorder::new(ObsConfig::default());
        let mut snapshot = recorder.snapshot();
        let graph = random_label(&mut rng);
        let algorithm = random_label(&mut rng);
        snapshot.routes.push(RouteCount {
            graph: graph.clone(),
            algorithm: algorithm.clone(),
            requests: 7,
        });
        let samples = parse_prometheus_text(&render_prometheus(&snapshot))
            .map_err(TestCaseError::fail)?;
        let route = samples
            .iter()
            .find(|s| s.name == "preview_requests_total")
            .expect("route sample present");
        prop_assert_eq!(route.label("graph"), Some(graph.as_str()));
        prop_assert_eq!(route.label("algorithm"), Some(algorithm.as_str()));
        prop_assert_eq!(route.value, 7.0);
    }

    /// Independently of the round-trip comparison: for every histogram
    /// series in the parsed output, cumulative bucket values are
    /// non-decreasing in `le` order and the `+Inf` bucket equals the
    /// series count.
    #[test]
    fn cumulative_buckets_are_monotone(seed in 0u64..10_000) {
        let snapshot = random_snapshot(seed);
        let samples = parse_prometheus_text(&render_prometheus(&snapshot))
            .map_err(TestCaseError::fail)?;

        let mut series: Vec<String> = samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket"))
            .map(|s| format!("{}|{}", s.name, s.label("stage").unwrap_or("")))
            .collect();
        series.sort();
        series.dedup();

        for key in series {
            let (name, stage) = key.split_once('|').unwrap();
            let mut buckets: Vec<(f64, f64)> = samples
                .iter()
                .filter(|s| {
                    s.name == name && s.label("stage").unwrap_or("") == stage
                })
                .map(|s| {
                    let le = s.label("le").expect("bucket has le");
                    let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                    (le, s.value)
                })
                .collect();
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut previous = 0.0;
            for (le, value) in &buckets {
                prop_assert!(
                    *value >= previous,
                    "{} le={} went backwards: {} < {}", name, le, value, previous
                );
                previous = *value;
            }
            let (last_le, last_value) = buckets.last().unwrap();
            prop_assert!(last_le.is_infinite(), "{name} missing +Inf bucket");
            let count_name = format!("{}_count", name.trim_end_matches("_bucket"));
            let count = samples
                .iter()
                .find(|s| s.name == count_name && s.label("stage").unwrap_or("") == stage)
                .expect("count sample present");
            prop_assert_eq!(*last_value, count.value);
        }
    }
}
