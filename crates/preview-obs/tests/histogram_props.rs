//! Property tests for the exact log-linear histogram: record/merge
//! round-trips, quantiles tracking a sorted-vector reference within one
//! bucket, and top-bucket saturation.
//!
//! The vendored proptest supports integer-range strategies only, so value
//! vectors are derived from a proptest-chosen seed via `ChaCha8Rng` (the
//! same pattern as `entity-graph`'s CSR property tests).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use preview_obs::{bucket_index, bucket_lower, Histogram, HistogramSnapshot, BUCKETS};

/// Values spanning every non-saturating octave of the layout (the exact
/// linear range through 2³⁵; at/above 2³⁶ buckets saturate and the 1/32
/// error bound intentionally no longer applies — covered separately below).
fn random_values(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let exp = rng.gen_range(0u32..36);
            rng.gen_range(0..=(1u64 << exp))
        })
        .collect()
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a value stream across two histograms and merging their
    /// snapshots is bucket-for-bucket identical to recording everything
    /// into one histogram — and totals (count, sum, max) stay exact.
    #[test]
    fn record_then_merge_round_trips(
        seed in 0u64..10_000,
        len in 1usize..2_000,
        split_num in 0u64..=100,
    ) {
        let values = random_values(seed, len);
        let split = (len as u64 * split_num / 100) as usize;
        let whole = record_all(&values);

        let mut merged = record_all(&values[..split]);
        merged.merge(&record_all(&values[split..]));
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), len as u64);
        prop_assert_eq!(merged.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(merged.max(), values.iter().copied().max().unwrap_or(0));

        // Merging an empty snapshot is the identity.
        let mut padded = whole.clone();
        padded.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&padded, &whole);
    }

    /// Every quantile equals the lower bound of the bucket holding the true
    /// nearest-rank value from a sorted-vector reference: an underestimate
    /// by at most one bucket width (relative error ≤ 1/32, exact below the
    /// linear cutoff).
    #[test]
    fn quantiles_track_the_sorted_reference_within_one_bucket(
        seed in 0u64..10_000,
        len in 1usize..2_000,
    ) {
        let values = random_values(seed, len);
        let snapshot = record_all(&values);
        let mut sorted = values;
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let target = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let reference = sorted[target - 1];
            let got = snapshot.quantile(q);
            prop_assert_eq!(got, bucket_lower(bucket_index(reference)));
            prop_assert!(got <= reference);
            prop_assert!(
                reference - got <= reference / 32,
                "q={}: got {} vs reference {}", q, got, reference
            );
        }
    }

    /// Values at or above 2³⁶ all saturate into the top bucket; the exact
    /// maximum survives saturation.
    #[test]
    fn huge_values_saturate_into_the_top_bucket(
        seed in 0u64..10_000,
        len in 1usize..200,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let h = Histogram::new();
        let mut max = 0u64;
        for _ in 0..len {
            let v = rng.gen_range(1u64 << 36..=u64::MAX);
            prop_assert_eq!(bucket_index(v), BUCKETS - 1);
            h.record(v);
            max = max.max(v);
        }
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.bucket_counts()[BUCKETS - 1], len as u64);
        prop_assert_eq!(snapshot.quantile(0.5), bucket_lower(BUCKETS - 1));
        prop_assert_eq!(snapshot.max(), max);
    }
}
