//! Concurrency test: eight threads hammer one recorder through the real
//! span machinery, and every total comes out exact — the histograms and the
//! flight-ring push counter are lock-free but lose nothing.

use std::sync::Arc;

use preview_obs::{span, Counter, Recorder, Stage};

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 1_000;

#[test]
fn eight_threads_record_exact_counts() {
    let recorder = Arc::new(Recorder::default());
    recorder.enable();

    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let recorder = Arc::clone(&recorder);
            // Each thread records into its own stage, so per-stage counts
            // pin down per-thread completeness, not just the grand total.
            let stage = Stage::ALL[i];
            std::thread::spawn(move || {
                let _attach = recorder.attach();
                for iteration in 0..SPANS_PER_THREAD {
                    let outer = span!(stage, iteration = iteration);
                    assert!(outer.is_recording());
                    drop(span!(Stage::Response));
                    drop(outer);
                    recorder.add_counter(Counter::Publishes, 1);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    recorder.disable();

    for i in 0..THREADS {
        assert_eq!(
            recorder.stage_histogram(Stage::ALL[i]).count(),
            SPANS_PER_THREAD as u64,
            "stage {} lost records",
            Stage::ALL[i].name()
        );
    }
    let total = (THREADS * SPANS_PER_THREAD) as u64;
    assert_eq!(recorder.stage_histogram(Stage::Response).count(), total);
    assert_eq!(recorder.events_recorded(), 2 * total);
    assert_eq!(recorder.counter(Counter::Publishes), total);

    // The ring holds the most recent events, full to capacity, and every
    // event reads back internally consistent (nested Response spans are
    // depth 1, top-level spans depth 0).
    let events = recorder.ring_snapshot();
    assert_eq!(events.len(), recorder.config().ring_capacity);
    for event in &events {
        if event.stage == Stage::Response {
            assert_eq!(event.depth, 1);
        } else {
            assert_eq!(event.depth, 0);
            assert!((event.attr as usize) < SPANS_PER_THREAD);
        }
        assert!((event.thread as usize) <= THREADS * 2);
    }
}
