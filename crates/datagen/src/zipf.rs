//! A small Zipf-distribution helper used to skew entity and edge counts.
//!
//! Real Freebase domains have highly skewed type sizes (a handful of types
//! hold most entities); the synthetic generator reproduces that shape with a
//! Zipf law over ranks.

use rand::Rng;

/// Zipf weights for ranks `1..=n` with exponent `s`, normalised to sum to 1.
///
/// Returns an empty vector for `n == 0`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let raw: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Splits `total` items over `n` ranks following a Zipf law with exponent `s`.
///
/// The result always sums to exactly `total`. When `total >= n * minimum`,
/// every rank additionally receives at least `minimum` items. When the
/// minimum cannot be honoured (`total < n * minimum`, the degenerate case),
/// the Zipf shape is abandoned and `total` is spread as evenly as possible —
/// every rank gets the fair share `total / n`, with the remainder going to
/// the smallest (largest-weight) ranks — rather than over-subscribing: the
/// previous behaviour returned counts summing to `n * minimum > total`,
/// silently inventing items.
pub fn zipf_partition(total: u64, n: usize, s: f64, minimum: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let n64 = n as u64;
    if minimum.checked_mul(n64).is_none_or(|r| r > total) {
        let base = total / n64;
        let remainder = (total % n64) as usize;
        return (0..n).map(|i| base + u64::from(i < remainder)).collect();
    }
    let reserved = minimum * n64;
    let distributable = total - reserved;
    let weights = zipf_weights(n, s);
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|w| minimum + (w * distributable as f64).floor() as u64)
        .collect();
    // Flooring under-assigns (the weights sum to 1 up to rounding error);
    // give the remainder to the largest rank so the sum matches exactly.
    let assigned: u64 = counts.iter().sum();
    if assigned <= total {
        counts[0] += total - assigned;
    } else {
        // Only reachable via floating-point error at astronomical totals
        // (the floored weighted sum exceeding `distributable` requires the
        // accumulated ulp drift to top 1): trim the excess from the largest
        // ranks without dipping below the minimum.
        let mut excess = assigned - total;
        for count in counts.iter_mut() {
            let trim = excess.min(*count - minimum);
            *count -= trim;
            excess -= trim;
            if excess == 0 {
                break;
            }
        }
    }
    counts
}

/// A cheap Zipf-like sampler over `0..n` using inverse-CDF on pre-computed
/// cumulative weights. Sampling is `O(log n)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let weights = zipf_weights(n, s);
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (smaller ranks are more likely).
    ///
    /// # Panics
    ///
    /// Panics if the sampler is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(
            !self.cumulative.is_empty(),
            "cannot sample from an empty Zipf sampler"
        );
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weights_are_normalised_and_decreasing() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!(zipf_weights(0, 1.0).is_empty());
    }

    #[test]
    fn partition_preserves_total_and_minimum() {
        let counts = zipf_partition(1000, 7, 1.1, 5);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts.iter().all(|&c| c >= 5));
        assert!(counts[0] > counts[6]);
    }

    #[test]
    fn partition_handles_tight_totals() {
        let counts = zipf_partition(7, 7, 1.0, 1);
        assert_eq!(counts.iter().sum::<u64>(), 7);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn degenerate_minimum_does_not_oversubscribe() {
        // total < n * minimum: the minimum cannot be honoured. The pre-fix
        // code returned [2, 2, 2] here — summing to 6, one more item than
        // requested — because the `assigned < total` top-up masked the
        // oversubscribed reservation.
        let counts = zipf_partition(5, 3, 1.0, 2);
        assert_eq!(counts.iter().sum::<u64>(), 5, "must sum to exactly total");
        // Fair-share spread, remainder to the largest-weight ranks.
        assert_eq!(counts, vec![2, 2, 1]);
        // Harder degeneracy: fewer items than ranks.
        let counts = zipf_partition(2, 5, 1.3, 7);
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(counts, vec![1, 1, 0, 0, 0]);
        // minimum * n overflows u64: still just the fair-share spread.
        let counts = zipf_partition(10, 4, 1.0, u64::MAX);
        assert_eq!(counts.iter().sum::<u64>(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The partition invariant: the counts always sum to exactly
        /// `total`, and every rank receives at least
        /// `min(minimum, total / n)` (the full minimum when it fits, the
        /// fair share when the minimum is unsatisfiable).
        #[test]
        fn partition_sums_to_total_and_honours_floor(
            total in 0u64..2_000_000,
            n in 1usize..200,
            s_tenths in 0u64..30,
            minimum in 0u64..2_000,
        ) {
            let s = s_tenths as f64 / 10.0;
            let counts = zipf_partition(total, n, s, minimum);
            prop_assert_eq!(counts.len(), n);
            prop_assert_eq!(counts.iter().sum::<u64>(), total);
            let floor = minimum.min(total / n as u64);
            prop_assert!(
                counts.iter().all(|&c| c >= floor),
                "count below floor {}: {:?}", floor, counts
            );
        }
    }

    #[test]
    fn sampler_prefers_small_ranks() {
        let sampler = ZipfSampler::new(50, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn sampler_is_deterministic_for_a_seed() {
        let sampler = ZipfSampler::new(20, 1.2);
        let a: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..100).map(|_| sampler.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..100).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty Zipf sampler")]
    fn empty_sampler_panics_on_sample() {
        let sampler = ZipfSampler::new(0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = sampler.sample(&mut rng);
    }
}
