//! Seeded update-stream generation: batched, Zipf-skewed edits against an
//! evolving entity graph.
//!
//! Real knowledge bases are continuously edited, and the edits are skewed —
//! a few hot relationship types and popular entities attract most writes.
//! [`UpdateStream`] reproduces that shape as a deterministic sequence of
//! [`GraphDelta`] batches: each call to
//! [`next_delta`](UpdateStream::next_delta) inspects the *current* graph and
//! emits a batch that is guaranteed valid against it (the caller applies the
//! delta and feeds the new version back in), with
//!
//! * **relationship types** chosen by Zipf rank, so edits concentrate on a
//!   few hot rel types (which is exactly what makes incremental rescoring
//!   pay off: most scoring slots stay untouched),
//! * **edge endpoints** chosen by Zipf rank within their entity type, so
//!   popular entities keep accumulating relationships,
//! * entity removals preceded by the removal of all incident edges (the
//!   delta layer refuses to orphan edges),
//! * fresh entity names drawn from a monotone counter that cannot collide
//!   with generator- or update-produced names.
//!
//! Generation is fully deterministic for a `(seed, config)` pair and a given
//! sequence of input graphs.

use std::collections::{HashMap, HashSet};

use entity_graph::{EntityGraph, EntityId, GraphDelta, RelTypeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::zipf::ZipfSampler;

/// Shape of the generated update stream.
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Target number of ops per delta (entity removals may overshoot by the
    /// edge-removal ops they entail).
    pub batch_size: usize,
    /// Zipf exponent for relationship-type and endpoint popularity
    /// (0 = uniform, larger = more skew).
    pub skew: f64,
    /// Relative weight of add-entity ops.
    pub add_entity_weight: u32,
    /// Relative weight of add-edge ops.
    pub add_edge_weight: u32,
    /// Relative weight of remove-edge ops.
    pub remove_edge_weight: u32,
    /// Relative weight of remove-entity ops.
    pub remove_entity_weight: u32,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            batch_size: 16,
            skew: 0.9,
            add_entity_weight: 2,
            add_edge_weight: 6,
            remove_edge_weight: 3,
            remove_entity_weight: 1,
        }
    }
}

impl UpdateStreamConfig {
    /// A config with the given batch size and the remaining defaults.
    pub fn with_batch_size(batch_size: usize) -> Self {
        Self {
            batch_size,
            ..Self::default()
        }
    }
}

/// A deterministic generator of valid [`GraphDelta`] batches; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct UpdateStream {
    rng: ChaCha8Rng,
    config: UpdateStreamConfig,
    /// Monotone counter for fresh entity names across the whole stream.
    fresh: u64,
}

impl UpdateStream {
    /// Creates a stream from a seed and configuration.
    pub fn new(seed: u64, config: UpdateStreamConfig) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            config,
            fresh: 0,
        }
    }

    /// Generates the next batch of edits, valid against `graph`.
    ///
    /// Apply it with [`EntityGraph::apply_delta`] and pass the resulting
    /// graph to the next call. The batch can be empty only for degenerate
    /// graphs (no types at all).
    pub fn next_delta(&mut self, graph: &EntityGraph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        if graph.type_count() == 0 {
            return delta;
        }
        let rel_sampler = (graph.relationship_type_count() > 0)
            .then(|| ZipfSampler::new(graph.relationship_type_count(), self.config.skew));
        let type_sampler = ZipfSampler::new(graph.type_count(), self.config.skew);
        // Entities removed and (src, rel, dst) triples removed so far in
        // this batch: later ops must not reference them. Entities that
        // gained an edge this batch cannot be removed either (the new edge
        // would orphan).
        let mut removed_entities: HashSet<EntityId> = HashSet::new();
        let mut removed_triples: HashSet<(EntityId, RelTypeId, EntityId)> = HashSet::new();
        let mut gained_edges: HashSet<EntityId> = HashSet::new();
        // Endpoint samplers depend only on the pool size (the graph is fixed
        // for the whole batch), so memoize them instead of rebuilding the
        // cumulative weight table on every add-edge op. Keyed by length,
        // which leaves the RNG draw sequence untouched.
        let mut endpoint_samplers: HashMap<usize, ZipfSampler> = HashMap::new();
        let weights = [
            self.config.add_entity_weight,
            self.config.add_edge_weight,
            self.config.remove_edge_weight,
            self.config.remove_entity_weight,
        ];
        let total_weight: u32 = weights.iter().sum::<u32>().max(1);
        let mut attempts = 0usize;
        while delta.len() < self.config.batch_size && attempts < self.config.batch_size * 20 {
            attempts += 1;
            let mut roll = self.rng.gen_range(0..total_weight);
            let kind = weights
                .iter()
                .position(|&w| {
                    if roll < w {
                        true
                    } else {
                        roll -= w;
                        false
                    }
                })
                .unwrap_or(0);
            match kind {
                0 => self.gen_add_entity(graph, &type_sampler, &mut delta),
                1 => self.gen_add_edge(
                    graph,
                    rel_sampler.as_ref(),
                    &removed_entities,
                    &mut gained_edges,
                    &mut endpoint_samplers,
                    &mut delta,
                ),
                2 => self.gen_remove_edge(graph, &mut removed_triples, &mut delta),
                _ => self.gen_remove_entity(
                    graph,
                    &mut removed_entities,
                    &mut removed_triples,
                    &gained_edges,
                    &mut delta,
                ),
            }
        }
        delta
    }

    fn gen_add_entity(
        &mut self,
        graph: &EntityGraph,
        type_sampler: &ZipfSampler,
        delta: &mut GraphDelta,
    ) {
        let ty = entity_graph::TypeId::from_usize(type_sampler.sample(&mut self.rng));
        let name = format!("{} +u{}", graph.type_name(ty), self.fresh);
        self.fresh += 1;
        delta.add_entity(name, &[graph.type_name(ty)]);
    }

    fn gen_add_edge(
        &mut self,
        graph: &EntityGraph,
        rel_sampler: Option<&ZipfSampler>,
        removed_entities: &HashSet<EntityId>,
        gained_edges: &mut HashSet<EntityId>,
        endpoint_samplers: &mut HashMap<usize, ZipfSampler>,
        delta: &mut GraphDelta,
    ) {
        let Some(rel_sampler) = rel_sampler else {
            return;
        };
        let rel_id = RelTypeId::from_usize(rel_sampler.sample(&mut self.rng));
        let rel = graph.rel_type(rel_id);
        let src_pool = graph.entities_of_type(rel.src_type);
        let dst_pool = graph.entities_of_type(rel.dst_type);
        if src_pool.is_empty() || dst_pool.is_empty() {
            return;
        }
        let skew = self.config.skew;
        for len in [src_pool.len(), dst_pool.len()] {
            endpoint_samplers
                .entry(len)
                .or_insert_with(|| ZipfSampler::new(len, skew));
        }
        let src_sampler = &endpoint_samplers[&src_pool.len()];
        let dst_sampler = &endpoint_samplers[&dst_pool.len()];
        // Redraw a few times if an endpoint was removed earlier this batch.
        for _ in 0..8 {
            let src = src_pool[src_sampler.sample(&mut self.rng)];
            let dst = dst_pool[dst_sampler.sample(&mut self.rng)];
            if removed_entities.contains(&src) || removed_entities.contains(&dst) {
                continue;
            }
            delta.add_edge(
                &graph.entity(src).name,
                &rel.name,
                &graph.entity(dst).name,
                graph.type_name(rel.src_type),
                graph.type_name(rel.dst_type),
            );
            gained_edges.insert(src);
            gained_edges.insert(dst);
            return;
        }
    }

    fn gen_remove_edge(
        &mut self,
        graph: &EntityGraph,
        removed_triples: &mut HashSet<(EntityId, RelTypeId, EntityId)>,
        delta: &mut GraphDelta,
    ) {
        if graph.edge_count() == 0 {
            return;
        }
        for _ in 0..8 {
            let edge = graph.edge(entity_graph::EdgeId::from_usize(
                self.rng.gen_range(0..graph.edge_count()),
            ));
            if !removed_triples.insert((edge.src, edge.rel, edge.dst)) {
                continue;
            }
            let rel = graph.rel_type(edge.rel);
            delta.remove_edge(
                &graph.entity(edge.src).name,
                &rel.name,
                &graph.entity(edge.dst).name,
                graph.type_name(rel.src_type),
                graph.type_name(rel.dst_type),
            );
            return;
        }
    }

    fn gen_remove_entity(
        &mut self,
        graph: &EntityGraph,
        removed_entities: &mut HashSet<EntityId>,
        removed_triples: &mut HashSet<(EntityId, RelTypeId, EntityId)>,
        gained_edges: &HashSet<EntityId>,
        delta: &mut GraphDelta,
    ) {
        if graph.entity_count() == 0 {
            return;
        }
        for _ in 0..8 {
            let entity = EntityId::from_usize(self.rng.gen_range(0..graph.entity_count()));
            if removed_entities.contains(&entity) || gained_edges.contains(&entity) {
                continue;
            }
            // Distinct incident (src, rel, dst) triples that are still live.
            let mut triples: Vec<(EntityId, RelTypeId, EntityId)> = graph
                .out_edges(entity)
                .iter()
                .chain(graph.in_edges(entity))
                .map(|&eid| {
                    let e = graph.edge(eid);
                    (e.src, e.rel, e.dst)
                })
                .filter(|t| !removed_triples.contains(t))
                .collect();
            triples.sort_unstable();
            triples.dedup();
            // Skip hubs: removing a heavily connected entity would flood the
            // batch with edge removals (and real-world deletions target
            // obscure entities far more often than hubs anyway).
            if triples.len() > 6 {
                continue;
            }
            // Removing one endpoint's triples may orphan nothing else: each
            // removal drops *all* parallel instances of the triple.
            for &(src, rel_id, dst) in &triples {
                let rel = graph.rel_type(rel_id);
                delta.remove_edge(
                    &graph.entity(src).name,
                    &rel.name,
                    &graph.entity(dst).name,
                    graph.type_name(rel.src_type),
                    graph.type_name(rel.dst_type),
                );
                removed_triples.insert((src, rel_id, dst));
            }
            delta.remove_entity(&graph.entity(entity).name);
            removed_entities.insert(entity);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::FreebaseDomain;
    use crate::generator::SyntheticGenerator;
    use entity_graph::delta;

    fn film_graph() -> EntityGraph {
        SyntheticGenerator::new(7).generate(&FreebaseDomain::Film.spec(2e-5))
    }

    #[test]
    fn generated_deltas_apply_cleanly_and_splice_byte_identically() {
        let mut graph = film_graph();
        let mut stream = UpdateStream::new(42, UpdateStreamConfig::default());
        for _ in 0..5 {
            let delta = stream.next_delta(&graph);
            assert!(!delta.is_empty(), "film graph always admits edits");
            let applied = graph
                .apply_delta(&delta)
                .expect("generated deltas are valid");
            assert_eq!(applied.graph, delta::rebuild(&applied.graph));
            graph = applied.graph;
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let graph = film_graph();
        let config = UpdateStreamConfig::default();
        let a = UpdateStream::new(9, config.clone()).next_delta(&graph);
        let b = UpdateStream::new(9, config.clone()).next_delta(&graph);
        assert_eq!(a, b);
        let c = UpdateStream::new(10, config).next_delta(&graph);
        assert_ne!(a, c);
    }

    #[test]
    fn edits_concentrate_on_hot_relationship_types() {
        // With skew, the touched-rel set of a batch must stay well below the
        // full relationship-type count — that locality is what incremental
        // rescoring exploits.
        let graph = film_graph();
        let mut stream = UpdateStream::new(3, UpdateStreamConfig::with_batch_size(24));
        let delta = stream.next_delta(&graph);
        let applied = graph.apply_delta(&delta).unwrap();
        assert!(
            applied.summary.touched_rels.len() * 2 <= graph.relationship_type_count(),
            "{} touched of {} rel types",
            applied.summary.touched_rels.len(),
            graph.relationship_type_count()
        );
    }

    #[test]
    fn batch_size_is_respected_modulo_entity_removals() {
        let graph = film_graph();
        let mut stream = UpdateStream::new(5, UpdateStreamConfig::with_batch_size(10));
        let delta = stream.next_delta(&graph);
        // Entity removals may add up to 6 edge-removal ops beyond the target.
        assert!(
            delta.len() >= 10 && delta.len() <= 17,
            "len = {}",
            delta.len()
        );
    }

    #[test]
    fn degenerate_graphs_yield_empty_deltas() {
        let empty = entity_graph::EntityGraphBuilder::new().build();
        let mut stream = UpdateStream::new(1, UpdateStreamConfig::default());
        assert!(stream.next_delta(&empty).is_empty());
    }
}
