//! Simulated user study (Sec. 6.3 of the paper).
//!
//! The paper's user study assigned 84 graduate students to one of seven
//! schema-presentation approaches and, per domain, recorded (a) whether each
//! of four *existence-test* questions was answered correctly, (b) the time
//! spent per question, and (c) four Likert-scale *user-experience* answers
//! (Table 8). Human participants are unavailable here, so this module
//! simulates them with an explicit behavioural model that encodes the causal
//! mechanisms the paper's analysis hinges on:
//!
//! * **accuracy** grows with how much of the domain's important schema
//!   content the shown summary covers, and degrades mildly with the summary's
//!   visual complexity;
//! * **answer time** grows with visual complexity (large schema graphs and
//!   wide YPS09 tables take longer to scan);
//! * **perceived** understanding and completeness (questions Q2–Q4) grow with
//!   both coverage *and* complexity — reproducing the paper's observation
//!   that participants *felt* better informed by the complex presentations
//!   even when they answered existence tests less accurately with them.
//!
//! The per-approach coverage/complexity descriptors are supplied by the
//! caller ([`SummaryProfile`]); the experiment harness derives them from the
//! actual artefacts (discovered previews, the YPS09 summary, the raw schema
//! graph), and [`default_profiles`] provides documented fallbacks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The seven approaches compared in the user study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Optimal concise previews produced by this paper's method.
    Concise,
    /// Optimal tight previews (pairwise distance ≤ d).
    Tight,
    /// Optimal diverse previews (pairwise distance ≥ d).
    Diverse,
    /// The Freebase gold standard (Table 10).
    Freebase,
    /// Hand-crafted previews by database experts.
    Experts,
    /// The YPS09 relational-database-summarisation baseline.
    Yps09,
    /// The raw schema graph.
    Graph,
}

impl Approach {
    /// All seven approaches in the paper's presentation order.
    pub const ALL: [Approach; 7] = [
        Approach::Concise,
        Approach::Tight,
        Approach::Diverse,
        Approach::Freebase,
        Approach::Experts,
        Approach::Yps09,
        Approach::Graph,
    ];

    /// Label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Concise => "Concise",
            Approach::Tight => "Tight",
            Approach::Diverse => "Diverse",
            Approach::Freebase => "Freebase",
            Approach::Experts => "Experts",
            Approach::Yps09 => "YPS09",
            Approach::Graph => "Graph",
        }
    }
}

/// The user-experience questionnaire of Table 8.
pub const QUESTIONS: [&str; 4] = [
    "Q1: How easy was it to read the schema summary of this domain?",
    "Q2: How much understanding of the data in this domain can you gain from the schema summary?",
    "Q3: How helpful was the schema summary in assisting you to understand the data of this domain?",
    "Q4: Is the schema summary missing important information about data in this domain?",
];

/// Behavioural descriptor of one approach on one domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryProfile {
    /// The approach being described.
    pub approach: Approach,
    /// Fraction of the domain's important schema elements covered by the
    /// summary, in `[0, 1]`.
    pub coverage: f64,
    /// Normalised visual complexity of the presentation, in `[0, 1]`
    /// (0 ≈ a couple of narrow tables, 1 ≈ the full schema graph).
    pub complexity: f64,
}

/// Documented fallback descriptors, domain-independent. The experiment harness
/// replaces the preview-based entries with values measured on the actual
/// discovered previews whenever it can.
pub fn default_profiles() -> Vec<SummaryProfile> {
    vec![
        SummaryProfile {
            approach: Approach::Concise,
            coverage: 0.78,
            complexity: 0.25,
        },
        SummaryProfile {
            approach: Approach::Tight,
            coverage: 0.84,
            complexity: 0.22,
        },
        SummaryProfile {
            approach: Approach::Diverse,
            coverage: 0.74,
            complexity: 0.28,
        },
        SummaryProfile {
            approach: Approach::Freebase,
            coverage: 0.86,
            complexity: 0.24,
        },
        SummaryProfile {
            approach: Approach::Experts,
            coverage: 0.76,
            complexity: 0.30,
        },
        SummaryProfile {
            approach: Approach::Yps09,
            coverage: 0.82,
            complexity: 0.70,
        },
        SummaryProfile {
            approach: Approach::Graph,
            coverage: 1.00,
            complexity: 1.00,
        },
    ]
}

/// Configuration of the simulated study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Minimum participants per approach (the paper had 10–13).
    pub min_participants: usize,
    /// Maximum participants per approach.
    pub max_participants: usize,
    /// Existence-test questions per domain (the paper used 4).
    pub questions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            min_participants: 10,
            max_participants: 13,
            questions: 4,
            seed: 84,
        }
    }
}

/// One simulated participant's record for one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticipantRecord {
    /// The approach the participant was assigned to.
    pub approach: Approach,
    /// Correctness of each existence-test answer.
    pub existence_correct: Vec<bool>,
    /// Seconds spent on each existence-test question.
    pub time_secs: Vec<f64>,
    /// Likert scores (1–5) for questions Q1–Q4.
    pub experience: [u8; 4],
}

/// Aggregated per-approach outcome for one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproachOutcome {
    /// The approach.
    pub approach: Approach,
    /// Number of existence-test responses collected (participants × questions).
    pub responses: u64,
    /// Number of correct responses.
    pub correct: u64,
    /// All per-question times, for box plots and median comparisons.
    pub times: Vec<f64>,
    /// Mean Likert score per user-experience question.
    pub experience_means: [f64; 4],
}

impl ApproachOutcome {
    /// The conversion rate `c` of Table 5.
    pub fn conversion_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.correct as f64 / self.responses as f64
        }
    }
}

/// Result of simulating one domain of the user study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyOutcome {
    /// Individual participant records.
    pub participants: Vec<ParticipantRecord>,
    /// Per-approach aggregates, in [`Approach::ALL`] order.
    pub by_approach: Vec<ApproachOutcome>,
}

/// Simulates one domain of the user study for the given approach profiles.
pub fn simulate(profiles: &[SummaryProfile], config: &StudyConfig) -> StudyOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut participants = Vec::new();
    let mut by_approach = Vec::with_capacity(profiles.len());

    for profile in profiles {
        let count = if config.max_participants > config.min_participants {
            rng.gen_range(config.min_participants..=config.max_participants)
        } else {
            config.min_participants
        };
        let mut responses = 0u64;
        let mut correct = 0u64;
        let mut times = Vec::with_capacity(count * config.questions);
        let mut experience_sums = [0.0f64; 4];

        for _ in 0..count {
            let skill: f64 = rng.gen_range(-0.06..0.06);
            let mut record = ParticipantRecord {
                approach: profile.approach,
                existence_correct: Vec::with_capacity(config.questions),
                time_secs: Vec::with_capacity(config.questions),
                experience: [3; 4],
            };
            for _ in 0..config.questions {
                let p_correct = clamp(
                    0.44 + 0.5 * profile.coverage - 0.08 * profile.complexity + skill,
                    0.05,
                    0.995,
                );
                let is_correct = rng.gen::<f64>() < p_correct;
                // Scan time grows with complexity; log-normal-ish noise.
                let base = 18.0 + 85.0 * profile.complexity;
                let noise: f64 = rng.gen_range(0.6..1.6);
                let time = base * noise;
                record.existence_correct.push(is_correct);
                record.time_secs.push(time);
                responses += 1;
                if is_correct {
                    correct += 1;
                }
                times.push(time);
            }
            // Likert answers. Q1 (ease of reading) drops with complexity;
            // Q2–Q4 (perceived understanding / helpfulness / completeness)
            // rise with both coverage and complexity — the paper's observed
            // perception bias.
            let q1 = 4.6 - 2.0 * profile.complexity + rng.gen_range(-0.5..0.5);
            let richness = 0.45 * profile.coverage + 0.55 * profile.complexity;
            let q2 = 3.1 + 1.6 * richness + rng.gen_range(-0.5..0.5);
            let q3 = 3.2 + 1.5 * richness + rng.gen_range(-0.5..0.5);
            let q4 = 2.6 + 1.8 * richness + rng.gen_range(-0.5..0.5);
            record.experience = [to_likert(q1), to_likert(q2), to_likert(q3), to_likert(q4)];
            for (sum, &score) in experience_sums.iter_mut().zip(&record.experience) {
                *sum += f64::from(score);
            }
            participants.push(record);
        }

        let denom = count.max(1) as f64;
        by_approach.push(ApproachOutcome {
            approach: profile.approach,
            responses,
            correct,
            times,
            experience_means: [
                experience_sums[0] / denom,
                experience_sums[1] / denom,
                experience_sums[2] / denom,
                experience_sums[3] / denom,
            ],
        });
    }

    StudyOutcome {
        participants,
        by_approach,
    }
}

fn to_likert(value: f64) -> u8 {
    clamp(value.round(), 1.0, 5.0) as u8
}

/// Clamps `v` to `[lo, hi]`.
fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> StudyOutcome {
        simulate(&default_profiles(), &StudyConfig::default())
    }

    #[test]
    fn every_approach_gets_participants_within_bounds() {
        let o = outcome();
        assert_eq!(o.by_approach.len(), 7);
        for a in &o.by_approach {
            let participants = a.responses / 4;
            assert!(
                (10..=13).contains(&participants),
                "{:?}: {participants}",
                a.approach
            );
            assert!(a.correct <= a.responses);
            assert_eq!(a.times.len() as u64, a.responses);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = outcome();
        let b = outcome();
        assert_eq!(a, b);
    }

    #[test]
    fn conversion_rates_are_plausible() {
        let o = outcome();
        for a in &o.by_approach {
            let c = a.conversion_rate();
            assert!((0.5..=1.0).contains(&c), "{:?}: {c}", a.approach);
        }
    }

    #[test]
    fn compact_previews_are_faster_than_the_graph() {
        let o = outcome();
        let median = |xs: &[f64]| eval::median(xs).unwrap();
        let tight = o
            .by_approach
            .iter()
            .find(|a| a.approach == Approach::Tight)
            .unwrap();
        let graph = o
            .by_approach
            .iter()
            .find(|a| a.approach == Approach::Graph)
            .unwrap();
        let yps = o
            .by_approach
            .iter()
            .find(|a| a.approach == Approach::Yps09)
            .unwrap();
        assert!(median(&tight.times) < median(&graph.times));
        assert!(median(&tight.times) < median(&yps.times));
    }

    #[test]
    fn perception_bias_is_reproduced() {
        // Q2 (perceived understanding) is higher for the complex presentations
        // (Graph, YPS09) than for the compact Tight previews, even though the
        // Tight previews support at least as accurate existence-test answers.
        let o = outcome();
        let get = |ap: Approach| o.by_approach.iter().find(|a| a.approach == ap).unwrap();
        let tight = get(Approach::Tight);
        let graph = get(Approach::Graph);
        assert!(graph.experience_means[1] > tight.experience_means[1]);
        assert!(tight.conversion_rate() + 0.05 >= graph.conversion_rate() - 0.15);
    }

    #[test]
    fn likert_scores_are_in_range() {
        let o = outcome();
        for p in &o.participants {
            for &s in &p.experience {
                assert!((1..=5).contains(&s));
            }
        }
    }

    #[test]
    fn questionnaire_has_four_questions() {
        assert_eq!(QUESTIONS.len(), 4);
        assert!(QUESTIONS[3].contains("missing important information"));
    }
}
