//! Declarative domain specifications consumed by the synthetic generator.

use serde::{Deserialize, Serialize};

/// Specification of one entity type in a synthetic domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityTypeSpec {
    /// Entity-type name (e.g. `"FILM"`).
    pub name: String,
    /// Number of entities of this type to generate.
    pub entities: u64,
}

/// Specification of one relationship type in a synthetic domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelTypeSpec {
    /// Surface name (e.g. `"Directed By"`). Different relationship types may
    /// share a surface name as long as their endpoint types differ.
    pub name: String,
    /// Index into [`DomainSpec::entity_types`] of the source type.
    pub src: usize,
    /// Index into [`DomainSpec::entity_types`] of the destination type.
    pub dst: usize,
    /// Number of relationship instances (entity-graph edges) to generate.
    pub edges: u64,
}

/// A complete synthetic-domain specification: the schema graph shape plus the
/// per-type / per-relationship cardinalities the generator instantiates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name (e.g. `"film"`).
    pub name: String,
    /// Entity types with their target entity counts.
    pub entity_types: Vec<EntityTypeSpec>,
    /// Relationship types with their target edge counts.
    pub relationship_types: Vec<RelTypeSpec>,
}

/// Errors detected while validating a [`DomainSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A relationship type references an entity type index that does not exist.
    DanglingTypeIndex {
        /// The offending relationship type name.
        relationship: String,
        /// The out-of-range index.
        index: usize,
    },
    /// Two entity types share the same name.
    DuplicateTypeName(String),
    /// Two relationship types share name *and* endpoints.
    DuplicateRelationship(String),
    /// The spec's cardinalities would overflow the `u32`-indexed graph store
    /// the generator lowers into (entity ids, edge ids and every CSR offset
    /// are `u32`-backed; see [`entity_graph::check_graph_capacity`]).
    ///
    /// Large scale factors hit this long before allocation fails: at film
    /// scale 1.0 a single extra `×300` on the edge scale silently wraps the
    /// edge-id space. Validation rejects the combination up front instead.
    CardinalityOverflow {
        /// Which counter overflowed (`"entities"`, `"edges"`,
        /// `"type memberships"`).
        what: &'static str,
        /// The requested total.
        requested: u64,
        /// The largest representable total.
        max: u64,
    },
    /// A type-name lookup failed; carries did-you-mean suggestions ranked by
    /// edit distance (matching the experiments-CLI unknown-flag pattern).
    UnknownTypeName {
        /// The name that did not match any entity type.
        name: String,
        /// The closest declared type names, nearest first.
        suggestions: Vec<String>,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::DanglingTypeIndex {
                relationship,
                index,
            } => {
                write!(
                    f,
                    "relationship {relationship:?} references unknown entity type index {index}"
                )
            }
            SpecError::DuplicateTypeName(name) => write!(f, "duplicate entity type name {name:?}"),
            SpecError::DuplicateRelationship(name) => {
                write!(
                    f,
                    "duplicate relationship type {name:?} (same name and endpoints)"
                )
            }
            SpecError::CardinalityOverflow {
                what,
                requested,
                max,
            } => {
                write!(
                    f,
                    "spec cardinalities too large: {requested} {what} exceed the \
                     u32-indexed limit of {max}; lower the scale factor"
                )
            }
            SpecError::UnknownTypeName { name, suggestions } => {
                write!(f, "unknown entity type name {name:?}")?;
                if !suggestions.is_empty() {
                    write!(f, "; did you mean {}?", suggestions.join(" or "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl DomainSpec {
    /// Total number of entities across all types.
    pub fn total_entities(&self) -> u64 {
        self.entity_types.iter().map(|t| t.entities).sum()
    }

    /// Total number of edges across all relationship types.
    pub fn total_edges(&self) -> u64 {
        self.relationship_types.iter().map(|r| r.edges).sum()
    }

    /// Number of entity types (schema-graph vertices).
    pub fn type_count(&self) -> usize {
        self.entity_types.len()
    }

    /// Number of relationship types (schema-graph edges).
    pub fn relationship_type_count(&self) -> usize {
        self.relationship_types.len()
    }

    /// Index of an entity type by name.
    pub fn type_index(&self, name: &str) -> Option<usize> {
        self.entity_types.iter().position(|t| t.name == name)
    }

    /// Resolves an entity-type name to its index, or fails with a
    /// [`SpecError::UnknownTypeName`] carrying did-you-mean suggestions —
    /// the closest declared names by edit distance, nearest first.
    pub fn resolve_type(&self, name: &str) -> Result<usize, SpecError> {
        if let Some(index) = self.type_index(name) {
            return Ok(index);
        }
        // Same tolerance rule as the experiments-CLI flag matcher: accept
        // candidates within a third of the query length (at least 1 edit),
        // so short names don't suggest arbitrary strangers.
        let max_distance = (name.chars().count() / 3).max(1);
        let mut ranked: Vec<(usize, &str)> = self
            .entity_types
            .iter()
            .map(|t| (levenshtein(name, &t.name), t.name.as_str()))
            .filter(|&(d, _)| d <= max_distance)
            .collect();
        ranked.sort();
        Err(SpecError::UnknownTypeName {
            name: name.to_string(),
            suggestions: ranked
                .into_iter()
                .take(3)
                .map(|(_, n)| n.to_string())
                .collect(),
        })
    }

    /// Validates internal consistency of the specification.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut names = std::collections::HashSet::new();
        for t in &self.entity_types {
            if !names.insert(t.name.as_str()) {
                return Err(SpecError::DuplicateTypeName(t.name.clone()));
            }
        }
        let mut rel_keys = std::collections::HashSet::new();
        for r in &self.relationship_types {
            for idx in [r.src, r.dst] {
                if idx >= self.entity_types.len() {
                    return Err(SpecError::DanglingTypeIndex {
                        relationship: r.name.clone(),
                        index: idx,
                    });
                }
            }
            if !rel_keys.insert((r.name.as_str(), r.src, r.dst)) {
                return Err(SpecError::DuplicateRelationship(r.name.clone()));
            }
        }
        // Reject cardinalities the u32-indexed graph store cannot hold before
        // the generator burns minutes building a graph that must fail. The
        // generator assigns exactly one type per entity, so type memberships
        // equal total entities.
        let entities = self.total_entities();
        if let Err(entity_graph::Error::GraphTooLarge {
            what,
            requested,
            max,
        }) = entity_graph::check_graph_capacity(entities, self.total_edges(), entities)
        {
            return Err(SpecError::CardinalityOverflow {
                what,
                requested,
                max,
            });
        }
        Ok(())
    }
}

/// Levenshtein edit distance over `char`s, for did-you-mean suggestions.
///
/// Duplicated from the bench crate's experiments-CLI helper rather than
/// imported: bench depends on datagen, so the dependency can't point the
/// other way.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DomainSpec {
        DomainSpec {
            name: "tiny".into(),
            entity_types: vec![
                EntityTypeSpec {
                    name: "A".into(),
                    entities: 10,
                },
                EntityTypeSpec {
                    name: "B".into(),
                    entities: 5,
                },
            ],
            relationship_types: vec![RelTypeSpec {
                name: "rel".into(),
                src: 0,
                dst: 1,
                edges: 20,
            }],
        }
    }

    #[test]
    fn totals_and_lookup() {
        let spec = tiny_spec();
        assert_eq!(spec.total_entities(), 15);
        assert_eq!(spec.total_edges(), 20);
        assert_eq!(spec.type_count(), 2);
        assert_eq!(spec.relationship_type_count(), 1);
        assert_eq!(spec.type_index("B"), Some(1));
        assert_eq!(spec.type_index("C"), None);
    }

    #[test]
    fn validate_accepts_well_formed_spec() {
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_dangling_index() {
        let mut spec = tiny_spec();
        spec.relationship_types[0].dst = 7;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DanglingTypeIndex { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_type_names() {
        let mut spec = tiny_spec();
        spec.entity_types.push(EntityTypeSpec {
            name: "A".into(),
            entities: 1,
        });
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateTypeName(_))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_relationships() {
        let mut spec = tiny_spec();
        let dup = spec.relationship_types[0].clone();
        spec.relationship_types.push(dup);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateRelationship(_))
        ));
    }

    #[test]
    fn spec_error_display() {
        let e = SpecError::DanglingTypeIndex {
            relationship: "r".into(),
            index: 3,
        };
        assert!(e.to_string().contains("unknown entity type index 3"));
    }

    #[test]
    fn validate_rejects_entity_overflow() {
        let mut spec = tiny_spec();
        spec.entity_types[0].entities = u64::from(u32::MAX);
        let err = spec.validate().unwrap_err();
        assert!(matches!(
            err,
            SpecError::CardinalityOverflow {
                what: "entities",
                requested,
                ..
            } if requested == u64::from(u32::MAX) + 5
        ));
        assert!(err.to_string().contains("lower the scale factor"));
    }

    #[test]
    fn validate_rejects_edge_overflow() {
        let mut spec = tiny_spec();
        spec.relationship_types[0].edges = u64::from(u32::MAX) + 7;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::CardinalityOverflow { what: "edges", .. })
        ));
    }

    #[test]
    fn validate_accepts_near_limit_cardinalities() {
        let mut spec = tiny_spec();
        // MAX_GRAPH_DIMENSION itself is representable.
        spec.entity_types[0].entities = entity_graph::MAX_GRAPH_DIMENSION - 5;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn resolve_type_finds_exact_names() {
        let spec = tiny_spec();
        assert_eq!(spec.resolve_type("B"), Ok(1));
    }

    #[test]
    fn resolve_type_suggests_near_misses() {
        let mut spec = tiny_spec();
        spec.entity_types[0].name = "FILM".into();
        spec.entity_types[1].name = "FILM GENRE".into();
        let err = spec.resolve_type("FILN").unwrap_err();
        match &err {
            SpecError::UnknownTypeName { name, suggestions } => {
                assert_eq!(name, "FILN");
                assert_eq!(suggestions, &["FILM".to_string()]);
            }
            other => panic!("expected UnknownTypeName, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean FILM?"));
    }

    #[test]
    fn resolve_type_omits_far_fetched_suggestions() {
        let spec = tiny_spec(); // types "A" and "B"
        let err = spec.resolve_type("COMPLETELY DIFFERENT").unwrap_err();
        assert!(matches!(
            err,
            SpecError::UnknownTypeName { ref suggestions, .. } if suggestions.is_empty()
        ));
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
