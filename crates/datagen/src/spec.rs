//! Declarative domain specifications consumed by the synthetic generator.

use serde::{Deserialize, Serialize};

/// Specification of one entity type in a synthetic domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityTypeSpec {
    /// Entity-type name (e.g. `"FILM"`).
    pub name: String,
    /// Number of entities of this type to generate.
    pub entities: u64,
}

/// Specification of one relationship type in a synthetic domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelTypeSpec {
    /// Surface name (e.g. `"Directed By"`). Different relationship types may
    /// share a surface name as long as their endpoint types differ.
    pub name: String,
    /// Index into [`DomainSpec::entity_types`] of the source type.
    pub src: usize,
    /// Index into [`DomainSpec::entity_types`] of the destination type.
    pub dst: usize,
    /// Number of relationship instances (entity-graph edges) to generate.
    pub edges: u64,
}

/// A complete synthetic-domain specification: the schema graph shape plus the
/// per-type / per-relationship cardinalities the generator instantiates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name (e.g. `"film"`).
    pub name: String,
    /// Entity types with their target entity counts.
    pub entity_types: Vec<EntityTypeSpec>,
    /// Relationship types with their target edge counts.
    pub relationship_types: Vec<RelTypeSpec>,
}

/// Errors detected while validating a [`DomainSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A relationship type references an entity type index that does not exist.
    DanglingTypeIndex {
        /// The offending relationship type name.
        relationship: String,
        /// The out-of-range index.
        index: usize,
    },
    /// Two entity types share the same name.
    DuplicateTypeName(String),
    /// Two relationship types share name *and* endpoints.
    DuplicateRelationship(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::DanglingTypeIndex {
                relationship,
                index,
            } => {
                write!(
                    f,
                    "relationship {relationship:?} references unknown entity type index {index}"
                )
            }
            SpecError::DuplicateTypeName(name) => write!(f, "duplicate entity type name {name:?}"),
            SpecError::DuplicateRelationship(name) => {
                write!(
                    f,
                    "duplicate relationship type {name:?} (same name and endpoints)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl DomainSpec {
    /// Total number of entities across all types.
    pub fn total_entities(&self) -> u64 {
        self.entity_types.iter().map(|t| t.entities).sum()
    }

    /// Total number of edges across all relationship types.
    pub fn total_edges(&self) -> u64 {
        self.relationship_types.iter().map(|r| r.edges).sum()
    }

    /// Number of entity types (schema-graph vertices).
    pub fn type_count(&self) -> usize {
        self.entity_types.len()
    }

    /// Number of relationship types (schema-graph edges).
    pub fn relationship_type_count(&self) -> usize {
        self.relationship_types.len()
    }

    /// Index of an entity type by name.
    pub fn type_index(&self, name: &str) -> Option<usize> {
        self.entity_types.iter().position(|t| t.name == name)
    }

    /// Validates internal consistency of the specification.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut names = std::collections::HashSet::new();
        for t in &self.entity_types {
            if !names.insert(t.name.as_str()) {
                return Err(SpecError::DuplicateTypeName(t.name.clone()));
            }
        }
        let mut rel_keys = std::collections::HashSet::new();
        for r in &self.relationship_types {
            for idx in [r.src, r.dst] {
                if idx >= self.entity_types.len() {
                    return Err(SpecError::DanglingTypeIndex {
                        relationship: r.name.clone(),
                        index: idx,
                    });
                }
            }
            if !rel_keys.insert((r.name.as_str(), r.src, r.dst)) {
                return Err(SpecError::DuplicateRelationship(r.name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DomainSpec {
        DomainSpec {
            name: "tiny".into(),
            entity_types: vec![
                EntityTypeSpec {
                    name: "A".into(),
                    entities: 10,
                },
                EntityTypeSpec {
                    name: "B".into(),
                    entities: 5,
                },
            ],
            relationship_types: vec![RelTypeSpec {
                name: "rel".into(),
                src: 0,
                dst: 1,
                edges: 20,
            }],
        }
    }

    #[test]
    fn totals_and_lookup() {
        let spec = tiny_spec();
        assert_eq!(spec.total_entities(), 15);
        assert_eq!(spec.total_edges(), 20);
        assert_eq!(spec.type_count(), 2);
        assert_eq!(spec.relationship_type_count(), 1);
        assert_eq!(spec.type_index("B"), Some(1));
        assert_eq!(spec.type_index("C"), None);
    }

    #[test]
    fn validate_accepts_well_formed_spec() {
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_dangling_index() {
        let mut spec = tiny_spec();
        spec.relationship_types[0].dst = 7;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DanglingTypeIndex { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_type_names() {
        let mut spec = tiny_spec();
        spec.entity_types.push(EntityTypeSpec {
            name: "A".into(),
            entities: 1,
        });
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateTypeName(_))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_relationships() {
        let mut spec = tiny_spec();
        let dup = spec.relationship_types[0].clone();
        spec.relationship_types.push(dup);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateRelationship(_))
        ));
    }

    #[test]
    fn spec_error_display() {
        let e = SpecError::DanglingTypeIndex {
            relationship: "r".into(),
            index: 3,
        };
        assert!(e.to_string().contains("unknown entity type index 3"));
    }
}
