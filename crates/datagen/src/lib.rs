//! Synthetic data generation for the preview-tables reproduction.
//!
//! The paper's evaluation runs on a 2012 Freebase dump, Amazon Mechanical
//! Turk workers and 84 human study participants — none of which can be
//! redistributed. This crate provides seeded, documented substitutes (see
//! `DESIGN.md`, "Substitutions"):
//!
//! * [`domains`] — the seven Freebase domains of Table 2 as synthetic
//!   [`DomainSpec`]s whose schema-graph shape matches the paper exactly and
//!   whose entity/edge totals are scaled by a user-chosen factor,
//! * [`generator`] — instantiates entity graphs from specifications with
//!   Zipf-skewed endpoint popularity,
//! * [`goldstandard`] — the Freebase gold standard of Table 10, verbatim,
//! * [`experts`] — expert preview schemas reproducing the gold-standard
//!   overlap reported in Tables 22–23,
//! * [`crowd`] — a Bradley–Terry crowd simulator standing in for the AMT
//!   study of Sec. 6.1.3,
//! * [`userstudy`] — a behavioural simulation of the seven-approach user
//!   study of Sec. 6.3,
//! * [`updates`] — seeded, Zipf-skewed update streams ([`GraphDelta`]
//!   batches) for exercising the live graph-update subsystem.
//!
//! [`GraphDelta`]: entity_graph::GraphDelta

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crowd;
pub mod domains;
pub mod experts;
pub mod generator;
pub mod goldstandard;
pub mod spec;
pub mod updates;
pub mod userstudy;
pub mod zipf;

pub use crowd::{simulate_pairwise_judgments, CrowdConfig, PairJudgment};
pub use domains::{FreebaseDomain, PaperStats};
pub use experts::{expert_preview, ExpertPreview};
pub use generator::SyntheticGenerator;
pub use goldstandard::{GoldStandard, GoldTable};
pub use spec::{DomainSpec, EntityTypeSpec, RelTypeSpec, SpecError};
pub use updates::{UpdateStream, UpdateStreamConfig};
pub use userstudy::{Approach, StudyConfig, StudyOutcome, SummaryProfile};
