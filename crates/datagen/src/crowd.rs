//! Simulated crowdsourced pairwise-preference collection (Sec. 6.1.3).
//!
//! The paper collected 1 000 opinions per domain from Amazon Mechanical Turk:
//! 50 random pairs of candidate key attributes (or non-key attributes), each
//! judged by 20 screened workers who picked the more important element of the
//! pair. Human workers are unavailable here, so this module simulates them
//! with a Bradley–Terry-style model: each worker prefers the element with the
//! higher *latent importance* with a probability that grows with the
//! importance gap, modulated by a per-worker reliability. Latent importance is
//! supplied by the caller (the experiment harness derives it from entity
//! counts plus gold-standard membership), so the simulation reproduces the
//! *kind* of noisy agreement the paper's PCC analysis measures without
//! hard-coding any method's ranking.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated crowd.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Number of random pairs per domain (the paper uses 50).
    pub pairs: usize,
    /// Number of workers judging each pair (the paper uses 20).
    pub workers_per_pair: usize,
    /// Sensitivity of the Bradley–Terry preference to the importance gap:
    /// larger values make workers more decisive.
    pub sensitivity: f64,
    /// Fraction of workers that pass the screening questions; the rest answer
    /// uniformly at random (the paper discards them, we keep them out of the
    /// tally the same way).
    pub screening_pass_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        Self {
            pairs: 50,
            workers_per_pair: 20,
            sensitivity: 4.0,
            screening_pass_rate: 0.85,
            seed: 2016,
        }
    }
}

/// The aggregated judgement of one pair of candidate items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairJudgment {
    /// Index (into the caller's item list) of the first element of the pair.
    pub first: usize,
    /// Index of the second element of the pair.
    pub second: usize,
    /// Number of screened workers favouring the first element.
    pub votes_first: u32,
    /// Number of screened workers favouring the second element.
    pub votes_second: u32,
}

impl PairJudgment {
    /// The difference in worker counts favouring first over second — the `Y`
    /// values of the paper's PCC computation.
    pub fn vote_difference(&self) -> f64 {
        f64::from(self.votes_first) - f64::from(self.votes_second)
    }
}

/// Simulates the AMT study for one item universe.
///
/// `latent_importance[i]` is the ground-truth importance of item `i` (any
/// positive scale); `config.pairs` random pairs of *distinct* items are drawn
/// and judged. Returns an empty vector if fewer than two items exist.
pub fn simulate_pairwise_judgments(
    latent_importance: &[f64],
    config: &CrowdConfig,
) -> Vec<PairJudgment> {
    let n = latent_importance.len();
    if n < 2 || config.pairs == 0 || config.workers_per_pair == 0 {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Normalise importances to [0, 1] so the sensitivity parameter has a
    // scale-free meaning.
    let max = latent_importance.iter().cloned().fold(f64::MIN, f64::max);
    let min = latent_importance.iter().cloned().fold(f64::MAX, f64::min);
    let range = (max - min).max(f64::EPSILON);
    let norm: Vec<f64> = latent_importance
        .iter()
        .map(|v| (v - min) / range)
        .collect();

    let mut judgments = Vec::with_capacity(config.pairs);
    for _ in 0..config.pairs {
        let first = rng.gen_range(0..n);
        let mut second = rng.gen_range(0..n);
        while second == first {
            second = rng.gen_range(0..n);
        }
        let gap = norm[first] - norm[second];
        // Probability a reliable worker prefers `first`.
        let p_first = 1.0 / (1.0 + (-config.sensitivity * gap).exp());
        let mut votes_first = 0u32;
        let mut votes_second = 0u32;
        for _ in 0..config.workers_per_pair {
            let passes_screening = rng.gen::<f64>() < config.screening_pass_rate;
            if !passes_screening {
                // Screened out: the response is not considered (Sec. 6.1.3).
                continue;
            }
            if rng.gen::<f64>() < p_first {
                votes_first += 1;
            } else {
                votes_second += 1;
            }
        }
        judgments.push(PairJudgment {
            first,
            second,
            votes_first,
            votes_second,
        });
    }
    judgments
}

/// Builds the paired `(X, Y)` samples of the paper's PCC computation:
/// `X` is the difference in ranking position of the two items under the
/// method being evaluated (position of `second` minus position of `first`, so
/// a method ranking `first` higher yields a positive value), and `Y` is the
/// difference in worker votes favouring `first`.
pub fn correlation_samples(judgments: &[PairJudgment], ranking: &[usize]) -> (Vec<f64>, Vec<f64>) {
    // position[i] = rank of item i under the method (0 = best).
    let mut position = vec![0usize; ranking.len()];
    for (pos, &item) in ranking.iter().enumerate() {
        position[item] = pos;
    }
    let mut xs = Vec::with_capacity(judgments.len());
    let mut ys = Vec::with_capacity(judgments.len());
    for j in judgments {
        if j.first >= position.len() || j.second >= position.len() {
            continue;
        }
        xs.push(position[j.second] as f64 - position[j.first] as f64);
        ys.push(j.vote_difference());
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn importances() -> Vec<f64> {
        // Item 0 is hugely important, then a smooth decay.
        (0..20).map(|i| 1000.0 / (i as f64 + 1.0)).collect()
    }

    #[test]
    fn produces_requested_number_of_pairs() {
        let judgments = simulate_pairwise_judgments(&importances(), &CrowdConfig::default());
        assert_eq!(judgments.len(), 50);
        for j in &judgments {
            assert_ne!(j.first, j.second);
            assert!(j.votes_first + j.votes_second <= 20);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_pairwise_judgments(&importances(), &CrowdConfig::default());
        let b = simulate_pairwise_judgments(&importances(), &CrowdConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn workers_prefer_more_important_items() {
        let imp = importances();
        let config = CrowdConfig {
            pairs: 200,
            ..CrowdConfig::default()
        };
        let judgments = simulate_pairwise_judgments(&imp, &config);
        let mut agree = 0usize;
        let mut total = 0usize;
        for j in &judgments {
            let truly_first = imp[j.first] > imp[j.second];
            let crowd_first = j.votes_first > j.votes_second;
            if j.votes_first != j.votes_second {
                total += 1;
                if truly_first == crowd_first {
                    agree += 1;
                }
            }
        }
        // Workers agree with the latent ordering more often than not, but far
        // from perfectly — the realistic noise level the PCC analysis needs.
        assert!(
            agree as f64 / total as f64 > 0.6,
            "agreement {agree}/{total}"
        );
    }

    #[test]
    fn good_ranking_correlates_better_than_bad_ranking() {
        let imp = importances();
        let judgments = simulate_pairwise_judgments(&imp, &CrowdConfig::default());
        let good: Vec<usize> = (0..imp.len()).collect(); // true order
        let bad: Vec<usize> = (0..imp.len()).rev().collect(); // reversed
        let (gx, gy) = correlation_samples(&judgments, &good);
        let (bx, by) = correlation_samples(&judgments, &bad);
        let good_pcc = eval::pearson(&gx, &gy).unwrap();
        let bad_pcc = eval::pearson(&bx, &by).unwrap();
        assert!(good_pcc > 0.4, "good ranking PCC {good_pcc}");
        assert!(bad_pcc < -0.4, "bad ranking PCC {bad_pcc}");
    }

    #[test]
    fn degenerate_inputs_give_empty_output() {
        assert!(simulate_pairwise_judgments(&[], &CrowdConfig::default()).is_empty());
        assert!(simulate_pairwise_judgments(&[1.0], &CrowdConfig::default()).is_empty());
        let zero_pairs = CrowdConfig {
            pairs: 0,
            ..CrowdConfig::default()
        };
        assert!(simulate_pairwise_judgments(&[1.0, 2.0], &zero_pairs).is_empty());
    }
}
