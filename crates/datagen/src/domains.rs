//! The seven Freebase domains used in the paper's evaluation (Table 2),
//! reproduced as synthetic domain specifications.
//!
//! The paper's experiments run on a September 2012 Freebase dump that is no
//! longer distributable. This module substitutes it with seeded synthetic
//! specifications that preserve what the algorithms actually consume:
//!
//! * the **schema-graph size** of every domain (number of entity types and
//!   relationship types) matches Table 2 exactly,
//! * the gold-standard entity types and their editor-selected attributes
//!   (Table 10) exist verbatim and carry large, Zipf-skewed entity/edge
//!   counts, alongside a few large "infrastructure" types (such as
//!   `MUSICAL RELEASE` or `TV EPISODE`) that are big but *not* part of the
//!   gold standard — reproducing the imperfection the paper observes in its
//!   P@K curves,
//! * total entity and edge counts follow Table 2 scaled by a user-chosen
//!   factor so experiments stay laptop-sized.
//!
//! All randomness is seeded per domain, so the same scale always yields the
//! same specification.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::goldstandard::{self, GoldStandard};
use crate::spec::{DomainSpec, EntityTypeSpec, RelTypeSpec};
use crate::zipf::zipf_partition;

/// Entity/schema graph sizes as reported in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperStats {
    /// Number of entities in the paper's dump.
    pub entities: u64,
    /// Number of relationship instances in the paper's dump.
    pub edges: u64,
    /// Number of entity types (schema-graph vertices).
    pub entity_types: usize,
    /// Number of relationship types (schema-graph edges).
    pub relationship_types: usize,
}

/// The seven Freebase domains of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FreebaseDomain {
    /// "books": 6 M entities / 91 types, 15 M edges / 201 relationship types.
    Books,
    /// "film": 2 M / 63, 18 M / 136.
    Film,
    /// "music": 27 M / 69, 187 M / 176 (the largest domain).
    Music,
    /// "TV": 2 M / 59, 17 M / 177.
    Tv,
    /// "people": 3 M / 45, 17 M / 78.
    People,
    /// "basketball": 19 K / 6, 557 K / 21 (the smallest domain).
    Basketball,
    /// "architecture": 133 K / 23, 432 K / 48.
    Architecture,
}

impl FreebaseDomain {
    /// All seven domains, in the order of Table 2.
    pub const ALL: [FreebaseDomain; 7] = [
        FreebaseDomain::Books,
        FreebaseDomain::Film,
        FreebaseDomain::Music,
        FreebaseDomain::Tv,
        FreebaseDomain::People,
        FreebaseDomain::Basketball,
        FreebaseDomain::Architecture,
    ];

    /// The five domains with a Freebase gold standard (Table 10), used by the
    /// scoring-accuracy experiments and the user study.
    pub const GOLD: [FreebaseDomain; 5] = [
        FreebaseDomain::Books,
        FreebaseDomain::Film,
        FreebaseDomain::Music,
        FreebaseDomain::Tv,
        FreebaseDomain::People,
    ];

    /// The domain name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FreebaseDomain::Books => "books",
            FreebaseDomain::Film => "film",
            FreebaseDomain::Music => "music",
            FreebaseDomain::Tv => "TV",
            FreebaseDomain::People => "people",
            FreebaseDomain::Basketball => "basketball",
            FreebaseDomain::Architecture => "architecture",
        }
    }

    /// Looks a domain up by its paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Table 2 sizes for this domain.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            FreebaseDomain::Books => PaperStats {
                entities: 6_000_000,
                edges: 15_000_000,
                entity_types: 91,
                relationship_types: 201,
            },
            FreebaseDomain::Film => PaperStats {
                entities: 2_000_000,
                edges: 18_000_000,
                entity_types: 63,
                relationship_types: 136,
            },
            FreebaseDomain::Music => PaperStats {
                entities: 27_000_000,
                edges: 187_000_000,
                entity_types: 69,
                relationship_types: 176,
            },
            FreebaseDomain::Tv => PaperStats {
                entities: 2_000_000,
                edges: 17_000_000,
                entity_types: 59,
                relationship_types: 177,
            },
            FreebaseDomain::People => PaperStats {
                entities: 3_000_000,
                edges: 17_000_000,
                entity_types: 45,
                relationship_types: 78,
            },
            FreebaseDomain::Basketball => PaperStats {
                entities: 19_000,
                edges: 557_000,
                entity_types: 6,
                relationship_types: 21,
            },
            FreebaseDomain::Architecture => PaperStats {
                entities: 133_000,
                edges: 432_000,
                entity_types: 23,
                relationship_types: 48,
            },
        }
    }

    /// The gold standard of this domain, if it has one.
    pub fn gold_standard(self) -> Option<&'static GoldStandard> {
        match self {
            FreebaseDomain::Books => Some(&goldstandard::BOOKS),
            FreebaseDomain::Film => Some(&goldstandard::FILM),
            FreebaseDomain::Music => Some(&goldstandard::MUSIC),
            FreebaseDomain::Tv => Some(&goldstandard::TV),
            FreebaseDomain::People => Some(&goldstandard::PEOPLE),
            _ => None,
        }
    }

    /// Large "infrastructure" entity types of the domain: types that hold many
    /// entities and edges but are *not* on the Freebase entrance page. Their
    /// presence is what keeps the scoring measures from trivially recovering
    /// the gold standard (cf. Table 11, where `MUSICAL RELEASE` and
    /// `RELEASE TRACK` outrank several entrance-page types).
    pub(crate) fn infrastructure_types(self) -> &'static [&'static str] {
        match self {
            FreebaseDomain::Books => &[
                "WRITTEN WORK",
                "PUBLISHER",
                "BOOK CHARACTER",
                "LITERARY SERIES",
            ],
            FreebaseDomain::Film => &[
                "FILM CHARACTER",
                "FILM CREWMEMBER",
                "PERFORMANCE",
                "FILM CUT",
            ],
            FreebaseDomain::Music => &["MUSICAL RELEASE", "RELEASE TRACK", "MUSICAL GENRE"],
            FreebaseDomain::Tv => &["TV EPISODE", "TV SEASON", "TV NETWORK", "TV GUEST ROLE"],
            FreebaseDomain::People => &["LOCATION", "EDUCATIONAL INSTITUTION", "FAMILY NAME"],
            FreebaseDomain::Basketball => &[
                "BASKETBALL PLAYER",
                "BASKETBALL TEAM",
                "BASKETBALL COACH",
                "BASKETBALL POSITION",
                "BASKETBALL GAME",
                "BASKETBALL SEASON",
            ],
            FreebaseDomain::Architecture => &[
                "BUILDING",
                "ARCHITECT",
                "ARCHITECTURAL STYLE",
                "STRUCTURE",
                "BUILDING FUNCTION",
                "OWNER",
            ],
        }
    }

    /// Deterministic per-domain seed for spec construction.
    fn seed(self) -> u64 {
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + self as u64)
    }

    /// Builds the synthetic domain specification at the given scale.
    ///
    /// `scale` multiplies the paper's entity and edge totals (Table 2); the
    /// schema-graph shape (numbers of entity and relationship types) is
    /// independent of `scale`. Typical values: `1e-3` for scoring-accuracy
    /// experiments, `1e-4` for quick tests.
    pub fn spec(self, scale: f64) -> DomainSpec {
        assert!(scale > 0.0, "scale must be positive");
        let stats = self.paper_stats();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed());

        // ---- Entity types -------------------------------------------------
        // Importance order: a couple of infrastructure types first, then the
        // gold-standard types, then the remaining infrastructure and filler.
        let gold_keys: Vec<&str> = self
            .gold_standard()
            .map(|g| g.key_attributes())
            .unwrap_or_default();
        let infra = self.infrastructure_types();
        let mut ordered: Vec<String> = Vec::new();
        for &t in infra.iter().take(2) {
            ordered.push(t.to_string());
        }
        for &k in &gold_keys {
            ordered.push(k.to_string());
        }
        for &t in infra.iter().skip(2) {
            ordered.push(t.to_string());
        }
        let mut filler_index = 0usize;
        while ordered.len() < stats.entity_types {
            filler_index += 1;
            ordered.push(format!(
                "{} CONCEPT {:02}",
                self.name().to_uppercase(),
                filler_index
            ));
        }
        ordered.truncate(stats.entity_types);

        let total_entities =
            ((stats.entities as f64 * scale).round() as u64).max(3 * stats.entity_types as u64);
        let entity_counts = zipf_partition(total_entities, ordered.len(), 1.05, 3);
        let entity_types: Vec<EntityTypeSpec> = ordered
            .iter()
            .zip(&entity_counts)
            .map(|(name, &entities)| EntityTypeSpec {
                name: name.clone(),
                entities,
            })
            .collect();

        let type_index = |name: &str| -> usize {
            ordered
                .iter()
                .position(|n| n == name)
                .expect("type present")
        };

        // ---- Relationship types -------------------------------------------
        // 1. Gold-standard attributes: one relationship per (key, attribute),
        //    targeting another core (gold or infrastructure) type.
        let core_count = (gold_keys.len() + infra.len()).min(ordered.len());
        let mut rels: Vec<(String, usize, usize)> = Vec::new();
        if let Some(gold) = self.gold_standard() {
            for table in gold.tables {
                let src = type_index(table.key);
                for &attr in table.non_keys {
                    let mut dst = rng.gen_range(0..core_count);
                    if dst == src {
                        dst = (dst + 1) % core_count;
                    }
                    rels.push((attr.to_string(), src, dst));
                }
            }
        }
        // 2. Infrastructure relationships: connect every infrastructure type
        //    to the domain's biggest type and to its neighbour, giving the
        //    schema a dense, well-connected core.
        for (i, &t) in infra.iter().enumerate() {
            let src = type_index(t);
            let hub = 0usize;
            if src != hub {
                rels.push((format!("{} Link", t.to_title_case_like()), src, hub));
            }
            let next = type_index(infra[(i + 1) % infra.len()]);
            if next != src {
                rels.push((format!("{} Chain", t.to_title_case_like()), src, next));
            }
        }
        // 3. Filler relationships until the Table 2 relationship-type count is
        //    reached. Real Freebase schema graphs are hub-and-spoke with long
        //    tails (the paper quotes an average path length of 3–4 and a
        //    diameter of 7 for "film"), so filler types are attached as chains
        //    hanging off the core rather than as a dense random graph: each
        //    filler type links to its predecessor in a chain of length ~5
        //    (the chain head links to a random core type), and the remaining
        //    relationship budget adds local links between nearby chain
        //    members.
        let filler_start = core_count.min(ordered.len());
        let chain_len = 5usize;
        for i in filler_start..ordered.len() {
            if rels.len() >= stats.relationship_types {
                break;
            }
            let offset = i - filler_start;
            let dst = if offset.is_multiple_of(chain_len) || i == filler_start {
                rng.gen_range(0..core_count.max(1))
            } else {
                i - 1
            };
            rels.push((format!("{} link {:03}", self.name(), offset + 1), i, dst));
        }
        let mut filler_rel = 0usize;
        while rels.len() < stats.relationship_types {
            filler_rel += 1;
            let src = rng.gen_range(0..ordered.len());
            // Local link: a type close by in the ordering (within the same
            // chain neighbourhood), occasionally a core type.
            let dst = if src >= filler_start && rng.gen_bool(0.7) {
                let lo = src.saturating_sub(3).max(filler_start);
                let hi = (src + 3).min(ordered.len() - 1);
                rng.gen_range(lo..=hi)
            } else {
                rng.gen_range(0..core_count.max(1))
            };
            let dst = if dst == src {
                (dst + 1) % ordered.len()
            } else {
                dst
            };
            rels.push((
                format!("{} relation {:03}", self.name(), filler_rel),
                src,
                dst,
            ));
        }
        rels.truncate(stats.relationship_types);

        // Edge counts: Zipf over the same ordering (gold/infrastructure
        // relationships were pushed first, so they receive the large counts).
        let total_edges = ((stats.edges as f64 * scale).round() as u64).max(rels.len() as u64);
        let edge_counts = zipf_partition(total_edges, rels.len(), 1.0, 1);
        let relationship_types: Vec<RelTypeSpec> = rels
            .into_iter()
            .zip(&edge_counts)
            .map(|((name, src, dst), &edges)| RelTypeSpec {
                name,
                src,
                dst,
                edges,
            })
            .collect();

        let spec = DomainSpec {
            name: self.name().to_string(),
            entity_types,
            relationship_types,
        };
        debug_assert!(spec.validate().is_ok(), "generated spec must validate");
        spec
    }
}

trait TitleCaseLike {
    fn to_title_case_like(&self) -> String;
}

impl TitleCaseLike for &str {
    fn to_title_case_like(&self) -> String {
        self.split_whitespace()
            .map(|w| {
                let mut chars = w.chars();
                match chars.next() {
                    Some(first) => {
                        first.to_uppercase().collect::<String>() + &chars.as_str().to_lowercase()
                    }
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_sizes_match_table2_for_every_domain() {
        for domain in FreebaseDomain::ALL {
            let stats = domain.paper_stats();
            let spec = domain.spec(1e-4);
            assert_eq!(spec.type_count(), stats.entity_types, "{}", domain.name());
            assert_eq!(
                spec.relationship_type_count(),
                stats.relationship_types,
                "{}",
                domain.name()
            );
            assert!(spec.validate().is_ok(), "{}", domain.name());
        }
    }

    #[test]
    fn gold_types_and_attributes_are_present() {
        for domain in FreebaseDomain::GOLD {
            let spec = domain.spec(1e-3);
            let gold = domain.gold_standard().unwrap();
            for table in gold.tables {
                let idx = spec.type_index(table.key);
                assert!(idx.is_some(), "{}: missing {}", domain.name(), table.key);
                for &attr in table.non_keys {
                    assert!(
                        spec.relationship_types
                            .iter()
                            .any(|r| r.name == attr && r.src == idx.unwrap()),
                        "{}: missing attribute {attr} on {}",
                        domain.name(),
                        table.key
                    );
                }
            }
        }
    }

    #[test]
    fn totals_scale_with_the_scale_factor() {
        let small = FreebaseDomain::Film.spec(1e-4);
        let large = FreebaseDomain::Film.spec(1e-3);
        assert!(large.total_entities() > small.total_entities());
        assert!(large.total_edges() > small.total_edges());
        // Roughly Table 2 scaled.
        let stats = FreebaseDomain::Film.paper_stats();
        let expected = (stats.entities as f64 * 1e-3) as u64;
        assert!((large.total_entities() as i64 - expected as i64).unsigned_abs() < expected / 5);
    }

    #[test]
    fn specs_are_deterministic() {
        let a = FreebaseDomain::Music.spec(1e-4);
        let b = FreebaseDomain::Music.spec(1e-4);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_are_skewed_but_positive() {
        let spec = FreebaseDomain::Tv.spec(1e-3);
        let max = spec.entity_types.iter().map(|t| t.entities).max().unwrap();
        let min = spec.entity_types.iter().map(|t| t.entities).min().unwrap();
        assert!(min >= 3);
        assert!(max > 10 * min);
        assert!(spec.relationship_types.iter().all(|r| r.edges >= 1));
    }

    #[test]
    fn name_round_trip() {
        for domain in FreebaseDomain::ALL {
            assert_eq!(FreebaseDomain::from_name(domain.name()), Some(domain));
        }
        assert_eq!(
            FreebaseDomain::from_name("FILM"),
            Some(FreebaseDomain::Film)
        );
        assert_eq!(FreebaseDomain::from_name("nope"), None);
    }

    #[test]
    fn basketball_matches_fig8_parameters() {
        // Fig. 8 quotes basketball as K=6, N=21.
        let spec = FreebaseDomain::Basketball.spec(1e-3);
        assert_eq!(spec.type_count(), 6);
        assert_eq!(spec.relationship_type_count(), 21);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = FreebaseDomain::Film.spec(0.0);
    }
}
