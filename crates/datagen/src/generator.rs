//! Instantiation of synthetic entity graphs from domain specifications.

use entity_graph::{EntityGraph, EntityGraphBuilder, EntityId, RelTypeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::spec::DomainSpec;
use crate::zipf::ZipfSampler;

/// Generates entity graphs from [`DomainSpec`]s.
///
/// For every entity type, `entities` named entities are created; for every
/// relationship type, `edges` relationship instances are drawn with
/// Zipf-skewed endpoint selection (a few "popular" entities attract most
/// relationships, as in real knowledge bases), which gives non-degenerate
/// value distributions for the entropy-based scoring measure.
///
/// Generation is fully deterministic for a given `(spec, seed)` pair.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    seed: u64,
    /// Zipf exponent for endpoint popularity.
    skew: f64,
}

impl Default for SyntheticGenerator {
    fn default() -> Self {
        Self {
            seed: 42,
            skew: 0.9,
        }
    }
}

impl SyntheticGenerator {
    /// Creates a generator with the given seed and the default skew.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Overrides the Zipf exponent controlling endpoint popularity
    /// (0 = uniform endpoints, larger = more skew).
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Instantiates an entity graph from a specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification does not validate (callers should use
    /// [`DomainSpec::validate`] on untrusted input first).
    pub fn generate(&self, spec: &DomainSpec) -> EntityGraph {
        spec.validate().expect("domain specification must be valid");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut builder = EntityGraphBuilder::with_capacity(
            spec.total_entities() as usize,
            spec.total_edges() as usize,
        );

        // Entity types and entities.
        let type_ids: Vec<_> = spec
            .entity_types
            .iter()
            .map(|t| builder.entity_type(&t.name))
            .collect();
        let mut entities: Vec<Vec<EntityId>> = Vec::with_capacity(spec.entity_types.len());
        for (type_spec, &type_id) in spec.entity_types.iter().zip(&type_ids) {
            let mut ids = Vec::with_capacity(type_spec.entities as usize);
            for i in 0..type_spec.entities {
                let name = format!("{} #{}", type_spec.name, i + 1);
                ids.push(builder.entity(&name, &[type_id]));
            }
            entities.push(ids);
        }

        // Relationship types and edges.
        for rel_spec in &spec.relationship_types {
            let rel: RelTypeId = builder.relationship_type(
                &rel_spec.name,
                type_ids[rel_spec.src],
                type_ids[rel_spec.dst],
            );
            let src_pool = &entities[rel_spec.src];
            let dst_pool = &entities[rel_spec.dst];
            if src_pool.is_empty() || dst_pool.is_empty() {
                continue;
            }
            let src_sampler = ZipfSampler::new(src_pool.len(), self.skew);
            let dst_sampler = ZipfSampler::new(dst_pool.len(), self.skew);
            for _ in 0..rel_spec.edges {
                let src = src_pool[src_sampler.sample(&mut rng)];
                let dst = dst_pool[dst_sampler.sample(&mut rng)];
                builder
                    .edge(src, rel, dst)
                    .expect("generated endpoints always carry the required types");
            }
        }

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::FreebaseDomain;
    use crate::spec::{EntityTypeSpec, RelTypeSpec};

    fn tiny_spec() -> DomainSpec {
        DomainSpec {
            name: "tiny".into(),
            entity_types: vec![
                EntityTypeSpec {
                    name: "A".into(),
                    entities: 20,
                },
                EntityTypeSpec {
                    name: "B".into(),
                    entities: 10,
                },
            ],
            relationship_types: vec![RelTypeSpec {
                name: "rel".into(),
                src: 0,
                dst: 1,
                edges: 100,
            }],
        }
    }

    #[test]
    fn generates_requested_cardinalities() {
        let g = SyntheticGenerator::new(1).generate(&tiny_spec());
        assert_eq!(g.entity_count(), 30);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.type_count(), 2);
        assert_eq!(g.relationship_type_count(), 1);
    }

    #[test]
    fn neighbor_slices_partition_generated_edges() {
        // The generated graph's pre-grouped CSR neighbor index must account
        // for every edge exactly once (modulo de-duplication of parallel
        // edges): summing distinct (src, rel, dst) triples over all entities'
        // borrowed `neighbors_via` slices matches a direct edge-list count.
        use std::collections::HashSet;
        let g = SyntheticGenerator::new(9).generate(&tiny_spec());
        let distinct: HashSet<_> = g.edges().map(|(_, e)| (e.src, e.rel, e.dst)).collect();
        let mut via_slices = 0usize;
        for (entity, _) in g.entities() {
            for (rel, _) in g.rel_types() {
                via_slices += g
                    .neighbors_via(entity, rel, entity_graph::Direction::Outgoing)
                    .len();
            }
        }
        assert_eq!(via_slices, distinct.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = tiny_spec();
        let a = SyntheticGenerator::new(7).generate(&spec);
        let b = SyntheticGenerator::new(7).generate(&spec);
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().map(|(_, e)| (e.src, e.dst)).collect();
        let eb: Vec<_> = b.edges().map(|(_, e)| (e.src, e.dst)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = tiny_spec();
        let a = SyntheticGenerator::new(1).generate(&spec);
        let b = SyntheticGenerator::new(2).generate(&spec);
        let ea: Vec<_> = a.edges().map(|(_, e)| (e.src, e.dst)).collect();
        let eb: Vec<_> = b.edges().map(|(_, e)| (e.src, e.dst)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn schema_of_generated_graph_matches_spec() {
        let spec = FreebaseDomain::Basketball.spec(1e-3);
        let g = SyntheticGenerator::new(3).generate(&spec);
        let s = g.schema_graph();
        assert_eq!(s.type_count(), spec.type_count());
        // Every relationship type has at least one edge, so the derived schema
        // has exactly as many relationship types as the spec.
        assert_eq!(s.relationship_type_count(), spec.relationship_type_count());
        // Per-type entity counts match the spec.
        for t in &spec.entity_types {
            let ty = s.type_by_name(&t.name).unwrap();
            assert_eq!(s.entity_count_of(ty), t.entities);
        }
    }

    #[test]
    fn edge_endpoints_respect_relationship_types() {
        let spec = FreebaseDomain::Architecture.spec(1e-3);
        let g = SyntheticGenerator::new(5).generate(&spec);
        for (_, edge) in g.edges() {
            let rel = g.rel_type(edge.rel);
            assert!(g.entity(edge.src).has_type(rel.src_type));
            assert!(g.entity(edge.dst).has_type(rel.dst_type));
        }
    }

    #[test]
    fn skew_concentrates_edges_on_popular_entities() {
        let spec = tiny_spec();
        let g = SyntheticGenerator::new(11).with_skew(1.2).generate(&spec);
        // The most popular destination entity should receive well over the
        // uniform share (100 edges / 10 destinations = 10).
        let max_in = (0..g.entity_count())
            .map(|i| g.in_edges(entity_graph::EntityId::new(i as u32)).len())
            .max()
            .unwrap();
        assert!(max_in > 20, "max in-degree {max_in}");
    }
}
