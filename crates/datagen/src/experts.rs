//! Hand-crafted "Experts" previews (Sec. 6.3 of the paper).
//!
//! The paper's expert previews were produced by ten database Ph.D. students
//! and consolidated per domain; the originals are not published, but Tables 22
//! and 23 report the overlap between the expert key attributes and the
//! Freebase gold standard (e.g. P@6 = 0.833 for "music": five of the six
//! expert key attributes are also entrance-page types). This module embeds
//! expert key-attribute lists that reproduce exactly those overlap counts:
//! the first expert choice always agrees with the gold standard (P@1 = 1 in
//! both tables), the remaining overlap slots take further gold types, and the
//! non-overlapping slots are filled with the domain's large infrastructure
//! types — the kind of "important but not entrance-page" types experts
//! plausibly pick.

use crate::domains::FreebaseDomain;

/// An expert-made preview schema for one domain: six key attributes, each with
/// the attributes the experts would show (for overlap-based experiments only
/// the key attributes matter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpertPreview {
    /// The domain.
    pub domain: FreebaseDomain,
    /// The six expert-chosen key attributes (entity-type names).
    pub keys: Vec<String>,
}

/// Number of expert key attributes that coincide with the gold standard, per
/// domain (derived from Table 23: P@6 × 6).
pub fn gold_overlap(domain: FreebaseDomain) -> Option<usize> {
    match domain {
        FreebaseDomain::Books => Some(2),
        FreebaseDomain::Film => Some(3),
        FreebaseDomain::Music => Some(5),
        FreebaseDomain::Tv => Some(3),
        FreebaseDomain::People => Some(3),
        _ => None,
    }
}

/// Builds the expert preview of a gold-standard domain.
///
/// Returns `None` for the two domains without a gold standard (basketball and
/// architecture), which the user study does not cover.
pub fn expert_preview(domain: FreebaseDomain) -> Option<ExpertPreview> {
    let gold = domain.gold_standard()?;
    let overlap = gold_overlap(domain)?;
    let gold_keys = gold.key_attributes();
    let infra = domain.infrastructure_types();

    let mut keys: Vec<String> = Vec::with_capacity(6);
    // Shared picks: the first `overlap` gold-standard types.
    for &k in gold_keys.iter().take(overlap) {
        keys.push(k.to_string());
    }
    // Non-shared picks: infrastructure types not in the gold standard.
    for &t in infra {
        if keys.len() >= 6 {
            break;
        }
        if !gold_keys.contains(&t) {
            keys.push(t.to_string());
        }
    }
    // Top up from the remaining gold types if the domain has too few
    // infrastructure types (keeps the list at six entries; this can raise the
    // overlap slightly for such domains, which only happens off the five
    // gold-standard domains in practice).
    for &k in gold_keys.iter().skip(overlap) {
        if keys.len() >= 6 {
            break;
        }
        keys.push(k.to_string());
    }
    Some(ExpertPreview { domain, keys })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_previews_exist_for_gold_domains_only() {
        for domain in FreebaseDomain::GOLD {
            assert!(expert_preview(domain).is_some(), "{}", domain.name());
        }
        assert!(expert_preview(FreebaseDomain::Basketball).is_none());
        assert!(expert_preview(FreebaseDomain::Architecture).is_none());
    }

    #[test]
    fn expert_previews_have_six_distinct_keys() {
        for domain in FreebaseDomain::GOLD {
            let preview = expert_preview(domain).unwrap();
            assert_eq!(preview.keys.len(), 6, "{}", domain.name());
            let mut sorted = preview.keys.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "{}", domain.name());
        }
    }

    #[test]
    fn overlap_with_gold_matches_table23() {
        for domain in FreebaseDomain::GOLD {
            let preview = expert_preview(domain).unwrap();
            let gold_keys = domain.gold_standard().unwrap().key_attributes();
            let shared = preview
                .keys
                .iter()
                .filter(|k| gold_keys.contains(&k.as_str()))
                .count();
            assert_eq!(shared, gold_overlap(domain).unwrap(), "{}", domain.name());
        }
    }

    #[test]
    fn first_pick_agrees_with_gold() {
        for domain in FreebaseDomain::GOLD {
            let preview = expert_preview(domain).unwrap();
            let gold_keys = domain.gold_standard().unwrap().key_attributes();
            assert_eq!(preview.keys[0], gold_keys[0], "{}", domain.name());
        }
    }

    #[test]
    fn expert_keys_exist_in_the_domain_spec() {
        for domain in FreebaseDomain::GOLD {
            let spec = domain.spec(1e-4);
            let preview = expert_preview(domain).unwrap();
            for key in &preview.keys {
                assert!(spec.type_index(key).is_some(), "{}: {key}", domain.name());
            }
        }
    }
}
