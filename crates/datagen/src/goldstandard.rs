//! The Freebase gold standard (Table 10 of the paper).
//!
//! For each of the five largest Freebase domains, the gold standard consists
//! of the six entity types shown on the domain's manually curated entrance
//! page (the gold-standard *key attributes*) and, for each such type, the up
//! to three type-dependent attributes selected by Freebase editors (the
//! gold-standard *non-key attributes*). The paper uses these as ground truth
//! for the scoring-accuracy experiments (Figs. 5–7, Table 3) and as the
//! "Freebase" arm of the user study.

/// One gold-standard preview table: a key attribute and its non-key
/// attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldTable {
    /// The key attribute (entity type name).
    pub key: &'static str,
    /// The editor-selected non-key attributes (relationship-type surface
    /// names), at most three.
    pub non_keys: &'static [&'static str],
}

/// The gold standard of one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldStandard {
    /// Domain name as used in the paper ("books", "film", "music", "TV",
    /// "people").
    pub domain: &'static str,
    /// The six gold-standard preview tables.
    pub tables: &'static [GoldTable],
}

impl GoldStandard {
    /// The gold-standard key attributes (entity-type names).
    pub fn key_attributes(&self) -> Vec<&'static str> {
        self.tables.iter().map(|t| t.key).collect()
    }

    /// The gold-standard non-key attributes of one key attribute, if present.
    pub fn non_keys_of(&self, key: &str) -> Option<&'static [&'static str]> {
        self.tables
            .iter()
            .find(|t| t.key == key)
            .map(|t| t.non_keys)
    }

    /// Total number of gold-standard non-key attributes (the `n` used for the
    /// expert previews and the size constraints in the user study).
    pub fn non_key_count(&self) -> usize {
        self.tables.iter().map(|t| t.non_keys.len()).sum()
    }

    /// Number of gold-standard tables (always 6 in the paper).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Gold standard of the "books" domain.
pub const BOOKS: GoldStandard = GoldStandard {
    domain: "books",
    tables: &[
        GoldTable {
            key: "BOOK",
            non_keys: &["Characters", "Genre", "Editions"],
        },
        GoldTable {
            key: "BOOK EDITION",
            non_keys: &["Publication Date", "Publisher", "Credited To"],
        },
        GoldTable {
            key: "SHORT STORY",
            non_keys: &["Genre", "Characters"],
        },
        GoldTable {
            key: "POEM",
            non_keys: &["Characters", "Meter", "Verse Form"],
        },
        GoldTable {
            key: "SHORT NON-FICTION",
            non_keys: &["Mode Of Writing", "Verse Form"],
        },
        GoldTable {
            key: "AUTHOR",
            non_keys: &[
                "Series Written (Or Contributed To)",
                "Works Edited",
                "Works Written",
            ],
        },
    ],
};

/// Gold standard of the "film" domain.
pub const FILM: GoldStandard = GoldStandard {
    domain: "film",
    tables: &[
        GoldTable {
            key: "FILM",
            non_keys: &["Directed By", "Tagline", "Initial Release Date"],
        },
        GoldTable {
            key: "FILM ACTOR",
            non_keys: &["Film Performances"],
        },
        GoldTable {
            key: "FILM GENRE",
            non_keys: &["Films Of This Genre"],
        },
        GoldTable {
            key: "FILM DIRECTOR",
            non_keys: &["Films Directed"],
        },
        GoldTable {
            key: "FILM PRODUCER",
            non_keys: &["Films Executive Produced", "Films Produced"],
        },
        GoldTable {
            key: "FILM WRITER",
            non_keys: &["Film Writing Credits"],
        },
    ],
};

/// Gold standard of the "music" domain.
pub const MUSIC: GoldStandard = GoldStandard {
    domain: "music",
    tables: &[
        GoldTable {
            key: "COMPOSITION",
            non_keys: &["Includes", "Lyricist", "Composer"],
        },
        GoldTable {
            key: "CONCERT",
            non_keys: &["Venue", "Start Date", "Concert Tour"],
        },
        GoldTable {
            key: "MUSIC VIDEO",
            non_keys: &["Song", "Initial Release Date", "Artist"],
        },
        GoldTable {
            key: "MUSICAL ALBUM",
            non_keys: &["Release Type", "Initial Release Date", "Artist"],
        },
        GoldTable {
            key: "MUSICAL ARTIST",
            non_keys: &["Albums", "Place Musical Career Began", "Musical Genres"],
        },
        GoldTable {
            key: "MUSICAL RECORDING",
            non_keys: &["Length", "Featured Artists", "Recorded By"],
        },
    ],
};

/// Gold standard of the "TV" domain.
pub const TV: GoldStandard = GoldStandard {
    domain: "TV",
    tables: &[
        GoldTable {
            key: "TV PROGRAM",
            non_keys: &[
                "Program Creator",
                "Air Date Of First Episode",
                "Air Date Of Final Episode",
            ],
        },
        GoldTable {
            key: "TV ACTOR",
            non_keys: &["Starring TV Roles"],
        },
        GoldTable {
            key: "TV CHARACTER",
            non_keys: &["Programs In Which This Was A Regular Character"],
        },
        GoldTable {
            key: "TV WRITER",
            non_keys: &["TV Programs (Recurring Writer)"],
        },
        GoldTable {
            key: "TV PRODUCER",
            non_keys: &["TV Programs Produced"],
        },
        GoldTable {
            key: "TV DIRECTOR",
            non_keys: &["TV Episodes Directed", "TV Segments Directed"],
        },
    ],
};

/// Gold standard of the "people" domain.
pub const PEOPLE: GoldStandard = GoldStandard {
    domain: "people",
    tables: &[
        GoldTable {
            key: "PERSON",
            non_keys: &["Profession", "Country Of Nationality", "Date Of Birth"],
        },
        GoldTable {
            key: "DECEASED PERSON",
            non_keys: &["Cause Of Death", "Place Of Death", "Date Of Death"],
        },
        GoldTable {
            key: "CAUSE OF DEATH",
            non_keys: &[
                "People Who Died This Way",
                "Includes Causes Of Death",
                "Parent Cause Of Death",
            ],
        },
        GoldTable {
            key: "ETHNICITY",
            non_keys: &[
                "Geographic Distribution",
                "Includes Group(s)",
                "Included In Group(s)",
            ],
        },
        GoldTable {
            key: "PROFESSION",
            non_keys: &[
                "Specializations",
                "Specialization Of",
                "People With This Profession",
            ],
        },
        GoldTable {
            key: "PROFESSIONAL FIELD",
            non_keys: &["Professions In This Field"],
        },
    ],
};

/// All five gold standards.
pub const ALL: [&GoldStandard; 5] = [&BOOKS, &FILM, &MUSIC, &TV, &PEOPLE];

/// Looks up the gold standard of a domain by (case-insensitive) name.
pub fn for_domain(domain: &str) -> Option<&'static GoldStandard> {
    ALL.iter()
        .copied()
        .find(|g| g.domain.eq_ignore_ascii_case(domain))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_domain_has_six_tables() {
        for gold in ALL {
            assert_eq!(gold.table_count(), 6, "domain {}", gold.domain);
            for table in gold.tables {
                assert!(!table.non_keys.is_empty());
                assert!(table.non_keys.len() <= 3);
            }
        }
    }

    #[test]
    fn key_attributes_are_distinct() {
        for gold in ALL {
            let mut keys = gold.key_attributes();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 6, "domain {}", gold.domain);
        }
    }

    #[test]
    fn non_key_counts_match_paper_sizes() {
        // Table 10 headers: film n=9, TV n=9, music n=18, people n=16.
        assert_eq!(FILM.non_key_count(), 9);
        assert_eq!(TV.non_key_count(), 9);
        assert_eq!(MUSIC.non_key_count(), 18);
        assert_eq!(PEOPLE.non_key_count(), 16);
        assert!(BOOKS.non_key_count() >= 15);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(for_domain("film").unwrap().domain, "film");
        assert_eq!(for_domain("TV").unwrap().domain, "TV");
        assert_eq!(for_domain("tv").unwrap().domain, "TV");
        assert!(for_domain("sports").is_none());
    }

    #[test]
    fn non_keys_of_known_and_unknown_keys() {
        assert_eq!(
            FILM.non_keys_of("FILM DIRECTOR"),
            Some(["Films Directed"].as_slice())
        );
        assert!(FILM.non_keys_of("MUSICAL ARTIST").is_none());
    }
}
