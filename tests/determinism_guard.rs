//! Byte-identical output guard for the CSR storage refactor.
//!
//! The golden values below (bit-exact score and full schema description for
//! every space × scoring combination, plus materialised tables) were captured
//! on the pre-CSR `Vec<Vec<_>>` graph representation. Discovery, scoring and
//! materialisation must keep producing exactly these bytes: a storage-layer
//! change is only a refactor if the paper-facing outputs do not move at all.

use preview_tables::core::{KeyScoring, NonKeyScoring, PreviewSpace, ScoredSchema, ScoringConfig};
use preview_tables::datagen::{FreebaseDomain, SyntheticGenerator};
use preview_tables::graph::{fixtures, EntityGraph};
use preview_tables::service::Algorithm;

/// One golden record: scoring config label, space label, bit pattern of the
/// optimal preview score, and the full `describe` rendering.
struct Golden {
    config: &'static str,
    space: &'static str,
    score_bits: u64,
    describe: &'static str,
}

fn config_of(label: &str) -> ScoringConfig {
    match label {
        "coverage" => ScoringConfig::coverage(),
        "entropy" => ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
        other => panic!("unknown config label {other:?}"),
    }
}

fn space_of(label: &str) -> PreviewSpace {
    match label {
        "concise" => PreviewSpace::concise(2, 6).unwrap(),
        "tight" => PreviewSpace::tight(2, 6, 2).unwrap(),
        "diverse" => PreviewSpace::diverse(2, 6, 2).unwrap(),
        other => panic!("unknown space label {other:?}"),
    }
}

fn assert_goldens(graph: &EntityGraph, goldens: &[Golden]) {
    assert_goldens_with_threads(graph, goldens, 1);
}

/// Checks the goldens with an explicit fork-join thread budget: scoring and
/// discovery run `threads`-wide, and must still reproduce the sequential
/// (pre-CSR) capture bit for bit — the parallel engine's determinism oracle.
fn assert_goldens_with_threads(graph: &EntityGraph, goldens: &[Golden], threads: usize) {
    for golden in goldens {
        let config = config_of(golden.config).with_threads(threads);
        let scored = ScoredSchema::build(graph, &config).unwrap();
        let space = space_of(golden.space);
        let preview = Algorithm::Auto
            .resolve(&space)
            .discovery()
            .discover(&scored, &space)
            .unwrap()
            .unwrap_or_else(|| panic!("{}/{}: no preview", golden.config, golden.space));
        let score = scored.preview_score(&preview);
        assert_eq!(
            score.to_bits(),
            golden.score_bits,
            "{}/{} (threads={threads}): score drifted ({} != {})",
            golden.config,
            golden.space,
            score,
            f64::from_bits(golden.score_bits)
        );
        assert_eq!(
            preview.describe(scored.schema()),
            golden.describe.replace("\\n", "\n"),
            "{}/{} (threads={threads}): description drifted",
            golden.config,
            golden.space
        );
    }
}

const FILM_CONCISE: &str = "FILM: Actor (FILM ACTOR), Genres (FILM GENRE), Director (FILM DIRECTOR), Producer (FILM PRODUCER), Executive Producer (FILM PRODUCER)\\nFILM ACTOR: Actor (FILM)";

#[rustfmt::skip]
const FIG1_GOLDENS: [Golden; 6] = [
        Golden { config: "coverage", space: "concise", score_bits: 0x4055000000000000, describe: FILM_CONCISE },
        Golden { config: "coverage", space: "tight", score_bits: 0x4055000000000000, describe: FILM_CONCISE },
        Golden { config: "coverage", space: "diverse", score_bits: 0x4053800000000000, describe: "FILM: Actor (FILM ACTOR), Genres (FILM GENRE), Director (FILM DIRECTOR), Producer (FILM PRODUCER), Executive Producer (FILM PRODUCER)\\nAWARD: Award Winners (FILM ACTOR)" },
        Golden { config: "entropy", space: "concise", score_bits: 0x4016308a2c0c0588, describe: "FILM: Director (FILM DIRECTOR), Actor (FILM ACTOR), Genres (FILM GENRE)\\nFILM DIRECTOR: Director (FILM)" },
        Golden { config: "entropy", space: "tight", score_bits: 0x4016308a2c0c0588, describe: "FILM: Director (FILM DIRECTOR), Actor (FILM ACTOR), Genres (FILM GENRE), Producer (FILM PRODUCER), Executive Producer (FILM PRODUCER)\\nFILM DIRECTOR: Director (FILM)" },
        Golden { config: "entropy", space: "diverse", score_bits: 0x401413965efaf449, describe: "FILM: Director (FILM DIRECTOR), Actor (FILM ACTOR), Genres (FILM GENRE), Producer (FILM PRODUCER), Executive Producer (FILM PRODUCER)\\nAWARD: Award Winners (FILM ACTOR)" },
];

#[test]
fn figure1_discovery_outputs_are_byte_identical_to_pre_csr_goldens() {
    assert_goldens(&fixtures::figure1_graph(), &FIG1_GOLDENS);
}

const FILM_DOMAIN_CONCISE: &str = "FILM CREWMEMBER: Directed By (FILM), Films Of This Genre (FILM GENRE), Film Character Chain (FILM CHARACTER)\\nFILM: Directed By (FILM CREWMEMBER), Tagline (FILM ACTOR), Initial Release Date (FILM ACTOR)";
const FILM_DOMAIN_ENTROPY: &str = "FILM CHARACTER: Film Crewmember Link (FILM CREWMEMBER), Film Character Chain (FILM CREWMEMBER), Film Cut Chain (FILM CUT), Performance Link (PERFORMANCE), Film Cut Link (FILM CUT)\\nFILM CREWMEMBER: Directed By (FILM)";

#[rustfmt::skip]
const FILM_GOLDENS: [Golden; 6] = [
        Golden { config: "coverage", space: "concise", score_bits: 0x40e5e18000000000, describe: FILM_DOMAIN_CONCISE },
        Golden { config: "coverage", space: "tight", score_bits: 0x40e5e18000000000, describe: FILM_DOMAIN_CONCISE },
        Golden { config: "coverage", space: "diverse", score_bits: 0x40e1f5e000000000, describe: "FILM CHARACTER: Film Character Chain (FILM CREWMEMBER), Film Crewmember Link (FILM CREWMEMBER), Performance Link (PERFORMANCE)\\nFILM: Directed By (FILM CREWMEMBER), Tagline (FILM ACTOR), Initial Release Date (FILM ACTOR)" },
        // The entropy bit patterns differ from the pre-CSR capture by 2 ulps:
        // the old implementation summed entropy terms in randomized HashMap
        // order, so its last bits varied run to run. Scoring now sums in
        // sorted-count order, and these bits are stable across processes.
        Golden { config: "entropy", space: "concise", score_bits: 0x407e6308b45d0e63, describe: FILM_DOMAIN_ENTROPY },
        Golden { config: "entropy", space: "tight", score_bits: 0x407e6308b45d0e63, describe: FILM_DOMAIN_ENTROPY },
        Golden { config: "entropy", space: "diverse", score_bits: 0x407d7fec6f238419, describe: "FILM CHARACTER: Film Crewmember Link (FILM CREWMEMBER), Film Character Chain (FILM CREWMEMBER), Film Cut Chain (FILM CUT), Performance Link (PERFORMANCE), Film Cut Link (FILM CUT)\\nFILM: Directed By (FILM CREWMEMBER)" },
];

#[test]
fn datagen_discovery_outputs_are_byte_identical_to_pre_csr_goldens() {
    let graph = SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(2e-4));
    assert_goldens(&graph, &FILM_GOLDENS);
}

#[test]
fn figure1_discovery_outputs_are_byte_identical_at_four_threads() {
    assert_goldens_with_threads(&fixtures::figure1_graph(), &FIG1_GOLDENS, 4);
}

/// Sharded storage is a pure refactor of the storage layer: discovery on a
/// `ScoredSchema` built from sharded storage must reproduce the pre-CSR
/// goldens bit for bit, under every sharding strategy and thread budget —
/// the same bytes the monolithic path is pinned to above.
fn assert_goldens_sharded(graph: EntityGraph, goldens: &[Golden]) {
    use preview_tables::graph::ShardingStrategy;
    let graph = std::sync::Arc::new(graph);
    let strategies = [
        ShardingStrategy::ByEntityType { shards: 1 },
        ShardingStrategy::ByEntityType { shards: 4 },
        ShardingStrategy::ByIdHash { shards: 3 },
    ];
    for strategy in strategies {
        for threads in [1, 4] {
            let sharded = preview_tables::core::build_sharded(
                std::sync::Arc::clone(&graph),
                strategy,
                threads,
            );
            for golden in goldens {
                let config = config_of(golden.config).with_threads(threads);
                let scored = ScoredSchema::build_sharded(&sharded, &config).unwrap();
                let space = space_of(golden.space);
                let preview = Algorithm::Auto
                    .resolve(&space)
                    .discovery()
                    .discover(&scored, &space)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{}/{}: no preview", golden.config, golden.space));
                assert_eq!(
                    scored.preview_score(&preview).to_bits(),
                    golden.score_bits,
                    "{}/{} ({strategy:?}, threads={threads}): sharded score drifted",
                    golden.config,
                    golden.space
                );
                assert_eq!(
                    preview.describe(scored.schema()),
                    golden.describe.replace("\\n", "\n"),
                    "{}/{} ({strategy:?}, threads={threads}): sharded description drifted",
                    golden.config,
                    golden.space
                );
            }
        }
    }
}

#[test]
fn figure1_sharded_discovery_outputs_are_byte_identical_to_goldens() {
    assert_goldens_sharded(fixtures::figure1_graph(), &FIG1_GOLDENS);
}

#[test]
fn datagen_sharded_discovery_outputs_are_byte_identical_to_goldens() {
    let graph = SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(2e-4));
    assert_goldens_sharded(graph, &FILM_GOLDENS);
}

#[test]
fn datagen_discovery_outputs_are_byte_identical_at_four_threads() {
    let graph = SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(2e-4));
    assert_goldens_with_threads(&graph, &FILM_GOLDENS, 4);
}

/// The brute force is not part of the `Algorithm::Auto` goldens above, so
/// pin its parallel path separately: at every thread budget it must return
/// *exactly* the preview (and score bits) of its sequential scan, on the
/// fig1 fixture and on a datagen film graph.
#[test]
fn brute_force_parallel_discovery_matches_sequential_bit_for_bit() {
    use preview_tables::core::{BruteForceDiscovery, PreviewDiscovery};
    let graphs = [
        fixtures::figure1_graph(),
        SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(2e-4)),
    ];
    for graph in &graphs {
        for config_label in ["coverage", "entropy"] {
            let scored = ScoredSchema::build(graph, &config_of(config_label)).unwrap();
            for space_label in ["concise", "tight", "diverse"] {
                let space = space_of(space_label);
                let sequential = BruteForceDiscovery::new()
                    .discover_with_threads(&scored, &space, 1)
                    .unwrap();
                let parallel = BruteForceDiscovery::new()
                    .discover_with_threads(&scored, &space, 4)
                    .unwrap();
                assert_eq!(
                    parallel, sequential,
                    "{config_label}/{space_label}: parallel brute force diverged"
                );
                if let (Some(s), Some(p)) = (&sequential, &parallel) {
                    assert_eq!(
                        scored.preview_score(p).to_bits(),
                        scored.preview_score(s).to_bits(),
                        "{config_label}/{space_label}: score bits diverged"
                    );
                }
            }
        }
    }
}

/// Best-first branch-and-bound is the newest exact engine and never selected
/// by the legacy `Algorithm::Auto` goldens above, so pin it separately: on
/// both reference graphs it must reproduce every golden *score bit* at
/// thread budgets 1 and 4 (the budget is ignored by design, so the outputs
/// must be identical, not merely equivalent), and its full preview —
/// structure and description — must be bitwise identical to the brute
/// force's, which is the tie-break contract it claims. (The DP-captured
/// `describe` goldens are not asserted here: on concise spaces the DP may
/// assemble a different same-score preview when trailing extras score zero.)
#[test]
fn best_first_discovery_reproduces_goldens_at_any_thread_budget() {
    use preview_tables::core::{BestFirstDiscovery, BruteForceDiscovery, PreviewDiscovery};
    let cases = [
        (fixtures::figure1_graph(), &FIG1_GOLDENS),
        (
            SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(2e-4)),
            &FILM_GOLDENS,
        ),
    ];
    for (graph, goldens) in &cases {
        for golden in goldens.iter() {
            let scored = ScoredSchema::build(graph, &config_of(golden.config)).unwrap();
            let space = space_of(golden.space);
            let reference = BruteForceDiscovery::new()
                .discover(&scored, &space)
                .unwrap()
                .unwrap_or_else(|| panic!("{}/{}: no preview", golden.config, golden.space));
            for threads in [1, 4] {
                let preview = BestFirstDiscovery::new()
                    .discover_with_threads(&scored, &space, threads)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{}/{}: no preview", golden.config, golden.space));
                assert_eq!(
                    scored.preview_score(&preview).to_bits(),
                    golden.score_bits,
                    "{}/{} (threads={threads}): best-first score drifted",
                    golden.config,
                    golden.space
                );
                assert_eq!(
                    preview, reference,
                    "{}/{} (threads={threads}): best-first diverged from brute force",
                    golden.config, golden.space
                );
                assert_eq!(
                    preview.describe(scored.schema()),
                    reference.describe(scored.schema()),
                    "{}/{} (threads={threads}): best-first description diverged",
                    golden.config,
                    golden.space
                );
            }
        }
    }
}

#[test]
fn figure1_materialisation_is_byte_identical_to_pre_csr_golden() {
    let graph = fixtures::figure1_graph();
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    let space = PreviewSpace::concise(2, 6).unwrap();
    let preview = Algorithm::Auto
        .resolve(&space)
        .discovery()
        .discover(&scored, &space)
        .unwrap()
        .unwrap();
    let tables = preview.materialize(&graph, scored.schema(), 10);
    let rendered: Vec<String> = tables.iter().map(|t| t.to_text()).collect();
    let golden_film = "FILM            | Actor (FILM ACTOR)            | Genres (FILM GENRE)            | Director (FILM DIRECTOR) | Producer (FILM PRODUCER) | Executive Producer (FILM PRODUCER)\n---------------------------------------------------------------------------------------------------------------------------------------------------------------------------\nMen in Black    | {Will Smith, Tommy Lee Jones} | {Action Film, Science Fiction} | {Barry Sonnenfeld}       | -                        | -                                 \nMen in Black II | {Will Smith, Tommy Lee Jones} | {Action Film, Science Fiction} | {Barry Sonnenfeld}       | {Will Smith}             | -                                 \nHancock         | {Will Smith}                  | -                              | {Peter Berg}             | {Will Smith}             | -                                 \nI, Robot        | {Will Smith}                  | {Action Film}                  | {Alex Proyas}            | -                        | {Will Smith}                      \n";
    let golden_actor = "FILM ACTOR      | Actor (FILM)                                      \n--------------------------------------------------------------------\nWill Smith      | {Men in Black, Men in Black II, Hancock, I, Robot}\nTommy Lee Jones | {Men in Black, Men in Black II}                   \n";
    assert_eq!(
        rendered,
        vec![golden_film.to_string(), golden_actor.to_string()]
    );
}

/// The delta subsystem's two bitwise contracts, checked end to end over a
/// seeded Zipf-skewed update stream on both reference graphs:
///
/// 1. the spliced graph equals a from-scratch rebuild of the updated
///    content, field for field (every CSR offset/payload array included),
/// 2. `rescore_delta` — which recomputes only touched scoring slots and
///    reuses the rest — equals a full `ScoredSchema::build` on the new
///    graph, bit for bit, under every scoring configuration.
#[test]
fn delta_splice_and_incremental_rescore_are_byte_identical() {
    use preview_tables::datagen::{UpdateStream, UpdateStreamConfig};
    use preview_tables::graph::delta;

    let starts = [
        ("fig1", fixtures::figure1_graph()),
        (
            "film",
            SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(1e-4)),
        ),
    ];
    for (label, start) in starts {
        let configs = [config_of("coverage"), config_of("entropy")];
        let mut graph = start;
        let mut scored: Vec<ScoredSchema> = configs
            .iter()
            .map(|c| ScoredSchema::build(&graph, c).unwrap())
            .collect();
        let mut stream = UpdateStream::new(2016, UpdateStreamConfig::with_batch_size(8));
        for step in 0..4 {
            let batch = stream.next_delta(&graph);
            let applied = graph
                .apply_delta(&batch)
                .unwrap_or_else(|e| panic!("{label} step {step}: delta rejected: {e}"));
            let rebuilt = delta::rebuild(&applied.graph);
            assert!(
                applied.graph == rebuilt,
                "{label} step {step}: spliced graph differs from the rebuild"
            );
            scored = scored
                .iter()
                .zip(&configs)
                .map(|(old, config)| {
                    let rescored = old.rescore_delta(&applied.graph, &applied.summary).unwrap();
                    let full = ScoredSchema::build(&applied.graph, config).unwrap();
                    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(rescored.key_scores()),
                        bits(full.key_scores()),
                        "{label} step {step}: key scores drifted"
                    );
                    assert!(
                        rescored.scores_identical(&full),
                        "{label} step {step}: non-key scores or schema shape drifted"
                    );
                    rescored
                })
                .collect();
            graph = applied.graph;
        }
    }
}

/// After a stream of deltas, discovery on the evolved graph still produces
/// byte-identical output whether it runs on the incrementally maintained
/// scored schema or on a cold full build — previews, descriptions and score
/// bits included.
#[test]
fn discovery_on_rescored_schema_is_byte_identical_to_cold_build() {
    use preview_tables::datagen::{UpdateStream, UpdateStreamConfig};

    let mut graph = SyntheticGenerator::new(1).generate(&FreebaseDomain::Film.spec(1e-4));
    let config = config_of("entropy");
    let mut scored = ScoredSchema::build(&graph, &config).unwrap();
    let mut stream = UpdateStream::new(7, UpdateStreamConfig::with_batch_size(10));
    for _ in 0..3 {
        let batch = stream.next_delta(&graph);
        let applied = graph.apply_delta(&batch).unwrap();
        scored = scored
            .rescore_delta(&applied.graph, &applied.summary)
            .unwrap();
        graph = applied.graph;
    }
    let cold = ScoredSchema::build(&graph, &config).unwrap();
    for space_label in ["concise", "tight", "diverse"] {
        let space = space_of(space_label);
        let algo = Algorithm::Auto.resolve(&space);
        let warm = algo.discovery().discover(&scored, &space).unwrap();
        let from_cold = algo.discovery().discover(&cold, &space).unwrap();
        assert_eq!(warm, from_cold, "{space_label}: preview structure drifted");
        if let (Some(warm), Some(from_cold)) = (&warm, &from_cold) {
            assert_eq!(
                warm.describe(scored.schema()),
                from_cold.describe(cold.schema()),
                "{space_label}: description drifted"
            );
            assert_eq!(
                scored.preview_score(warm).to_bits(),
                cold.preview_score(from_cold).to_bits(),
                "{space_label}: score bits drifted"
            );
        }
    }
}
