//! End-to-end checks against every worked number in the paper's running
//! example (Fig. 1 / Fig. 2 / Sec. 3 / Sec. 4).

use preview_tables::core::{
    AprioriDiscovery, BruteForceDiscovery, DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring,
    PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::graph::fixtures::{self, types};
use preview_tables::graph::Direction;

fn coverage_scored() -> ScoredSchema {
    let graph = fixtures::figure1_graph();
    ScoredSchema::build(&graph, &ScoringConfig::coverage()).expect("scoring succeeds")
}

#[test]
fn figure1_graph_statistics() {
    let graph = fixtures::figure1_graph();
    let stats = graph.stats();
    assert_eq!(stats.entity_types, 6);
    assert_eq!(stats.relationship_types, 7);
    assert_eq!(stats.entities, 14);
    assert_eq!(stats.edges, 21);
}

#[test]
fn section3_worked_scores() {
    let scored = coverage_scored();
    let schema = scored.schema();
    let film = schema.type_by_name(types::FILM).unwrap();
    // Scov(FILM) = 4.
    assert_eq!(scored.key_score(film), 4.0);
    // Scov^FILM(Director) = 4 and Scov^FILM(Genres) = 5.
    let director = schema
        .edges()
        .iter()
        .position(|e| e.name == "Director")
        .unwrap();
    let genres = schema
        .edges()
        .iter()
        .position(|e| e.name == "Genres")
        .unwrap();
    assert_eq!(scored.non_key_score(director, Direction::Incoming), 4.0);
    assert_eq!(scored.non_key_score(genres, Direction::Outgoing), 5.0);
}

#[test]
fn section3_entropy_scores() {
    let graph = fixtures::figure1_graph();
    let scored = ScoredSchema::build(
        &graph,
        &ScoringConfig::new(KeyScoring::Coverage, NonKeyScoring::Entropy),
    )
    .unwrap();
    let schema = scored.schema();
    let director = schema
        .edges()
        .iter()
        .position(|e| e.name == "Director")
        .unwrap();
    let genres = schema
        .edges()
        .iter()
        .position(|e| e.name == "Genres")
        .unwrap();
    // Sent^FILM(Director) ≈ 0.45 and Sent^FILM(Genres) ≈ 0.28 (log base 10).
    assert!((scored.non_key_score(director, Direction::Incoming) - 0.45).abs() < 0.01);
    assert!((scored.non_key_score(genres, Direction::Outgoing) - 0.28).abs() < 0.01);
}

#[test]
fn section4_concise_running_example() {
    // Optimal concise preview with k=2, n=6 keys FILM and FILM ACTOR, score 84.
    let scored = coverage_scored();
    let space = PreviewSpace::concise(2, 6).unwrap();
    for algorithm in [
        &BruteForceDiscovery::new() as &dyn PreviewDiscovery,
        &DynamicProgrammingDiscovery::new(),
    ] {
        let preview = algorithm.discover(&scored, &space).unwrap().unwrap();
        assert!(
            (scored.preview_score(&preview) - 84.0).abs() < 1e-9,
            "{}",
            algorithm.name()
        );
        let schema = scored.schema();
        assert!(preview.has_key(schema.type_by_name(types::FILM).unwrap()));
        assert!(preview.has_key(schema.type_by_name(types::FILM_ACTOR).unwrap()));
    }
}

#[test]
fn section4_diverse_running_example() {
    // Optimal diverse preview with k=2, n=6, d=2: keys FILM and AWARD.
    let scored = coverage_scored();
    let space = PreviewSpace::diverse(2, 6, 2).unwrap();
    for algorithm in [
        &BruteForceDiscovery::new() as &dyn PreviewDiscovery,
        &AprioriDiscovery::new(),
    ] {
        let preview = algorithm.discover(&scored, &space).unwrap().unwrap();
        let schema = scored.schema();
        assert!(
            preview.has_key(schema.type_by_name(types::FILM).unwrap()),
            "{}",
            algorithm.name()
        );
        assert!(
            preview.has_key(schema.type_by_name(types::AWARD).unwrap()),
            "{}",
            algorithm.name()
        );
        // FILM keeps all five of its candidate attributes under this budget.
        let film_table = preview
            .tables()
            .iter()
            .find(|t| schema.type_name(t.key()) == types::FILM)
            .unwrap();
        assert_eq!(film_table.non_keys().len(), 5);
    }
}

#[test]
fn figure2_preview_materialises_expected_tuples() {
    let graph = fixtures::figure1_graph();
    let scored = coverage_scored();
    let space = PreviewSpace::concise(2, 6).unwrap();
    let preview = DynamicProgrammingDiscovery::new()
        .discover(&scored, &space)
        .unwrap()
        .unwrap();
    let tables = preview.materialize(&graph, scored.schema(), 10);
    let film_table = tables.iter().find(|t| t.key_type == types::FILM).unwrap();
    // Four films, one tuple each (Def. 1: one tuple per entity of the key type).
    assert_eq!(film_table.total_tuples, 4);
    assert_eq!(film_table.rows.len(), 4);
    let names: Vec<&str> = film_table.rows.iter().map(|r| r.key.as_str()).collect();
    assert!(names.contains(&"Men in Black"));
    assert!(names.contains(&"Hancock"));
}
