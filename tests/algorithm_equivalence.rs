//! Property-based cross-crate tests: on randomly generated entity graphs the
//! dynamic-programming and Apriori algorithms always find previews with the
//! same score as the brute force, the monotonicity propositions hold, and
//! constraints are respected.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use preview_tables::core::{
    AprioriDiscovery, BruteForceDiscovery, DynamicProgrammingDiscovery, KeyScoring, NonKeyScoring,
    Preview, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::graph::{EntityGraph, EntityGraphBuilder};

/// Generates a small random entity graph with `types` entity types and roughly
/// `edges` relationship instances spread over a random schema.
fn random_graph(seed: u64, types: usize, rel_types: usize, edges: usize) -> EntityGraph {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = EntityGraphBuilder::new();
    let type_ids: Vec<_> = (0..types)
        .map(|i| builder.entity_type(&format!("T{i}")))
        .collect();
    let entities: Vec<Vec<_>> = type_ids
        .iter()
        .map(|&ty| {
            let count = rng.gen_range(2..6);
            (0..count)
                .map(|j| builder.entity(&format!("{ty}-{j}"), &[ty]))
                .collect()
        })
        .collect();
    let rels: Vec<_> = (0..rel_types)
        .map(|i| {
            let src = rng.gen_range(0..types);
            let dst = rng.gen_range(0..types);
            (
                builder.relationship_type(&format!("r{i}"), type_ids[src], type_ids[dst]),
                src,
                dst,
            )
        })
        .collect();
    for _ in 0..edges {
        let &(rel, src, dst) = &rels[rng.gen_range(0..rels.len())];
        let s = entities[src][rng.gen_range(0..entities[src].len())];
        let d = entities[dst][rng.gen_range(0..entities[dst].len())];
        builder
            .edge(s, rel, d)
            .expect("endpoints carry the right types");
    }
    builder.build()
}

fn preview_score(scored: &ScoredSchema, preview: &Option<Preview>) -> Option<f64> {
    preview.as_ref().map(|p| scored.preview_score(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DP and brute force agree on the optimal concise score (Theorem 3 plus
    /// the DP's optimal substructure).
    #[test]
    fn dp_matches_brute_force(seed in 0u64..500, k in 1usize..4, extra in 0usize..5) {
        let graph = random_graph(seed, 6, 10, 40);
        let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
        let space = PreviewSpace::concise(k, k + extra).unwrap();
        let bf = BruteForceDiscovery::new().discover(&scored, &space).unwrap();
        let dp = DynamicProgrammingDiscovery::new().discover(&scored, &space).unwrap();
        prop_assert_eq!(bf.is_some(), dp.is_some());
        if let (Some(b), Some(d)) = (preview_score(&scored, &bf), preview_score(&scored, &dp)) {
            prop_assert!((b - d).abs() < 1e-9 * (1.0 + b.abs()), "bf={b} dp={d}");
        }
    }

    /// Apriori and brute force agree on tight/diverse optima, and the results
    /// satisfy the distance constraint.
    #[test]
    fn apriori_matches_brute_force(seed in 0u64..300, k in 1usize..4, d in 1u32..4, tight in proptest::bool::ANY) {
        let graph = random_graph(seed, 6, 9, 35);
        let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
        let space = if tight {
            PreviewSpace::tight(k, k + 3, d).unwrap()
        } else {
            PreviewSpace::diverse(k, k + 3, d).unwrap()
        };
        let bf = BruteForceDiscovery::new().discover(&scored, &space).unwrap();
        let ap = AprioriDiscovery::new().discover(&scored, &space).unwrap();
        prop_assert_eq!(bf.is_some(), ap.is_some());
        if let Some(p) = &ap {
            prop_assert!(space.contains(p, scored.distances()));
        }
        if let (Some(b), Some(a)) = (preview_score(&scored, &bf), preview_score(&scored, &ap)) {
            prop_assert!((b - a).abs() < 1e-9 * (1.0 + b.abs()), "bf={b} apriori={a}");
        }
    }

    /// Proposition 1/2: growing the budget never decreases the optimal score.
    #[test]
    fn optimal_score_is_monotone_in_the_budget(seed in 0u64..200, k in 1usize..3) {
        let graph = random_graph(seed, 5, 8, 30);
        let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
        let mut last = 0.0f64;
        for extra in 0..5usize {
            let space = PreviewSpace::concise(k, k + extra).unwrap();
            if let Some(p) = DynamicProgrammingDiscovery::new().discover(&scored, &space).unwrap() {
                let score = scored.preview_score(&p);
                prop_assert!(score + 1e-9 >= last, "extra={extra}: {score} < {last}");
                last = score;
            }
        }
    }

    /// Every discovered preview is well-formed: k tables, distinct keys, at
    /// least one non-key attribute per table, within the attribute budget.
    #[test]
    fn previews_are_well_formed(seed in 0u64..300, k in 1usize..5, extra in 0usize..6) {
        let graph = random_graph(seed, 7, 12, 50);
        let config = ScoringConfig::new(KeyScoring::RandomWalk, NonKeyScoring::Entropy);
        let scored = ScoredSchema::build(&graph, &config).unwrap();
        let space = PreviewSpace::concise(k, k + extra).unwrap();
        if let Some(p) = DynamicProgrammingDiscovery::new().discover(&scored, &space).unwrap() {
            prop_assert!(space.contains(&p, scored.distances()));
            prop_assert_eq!(p.tables().len(), k);
            prop_assert!(p.non_key_count() <= k + extra);
        }
    }
}
