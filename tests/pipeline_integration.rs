//! Integration tests spanning datagen → entity-graph → preview-core →
//! baseline → eval: the full experiment pipeline on small synthetic domains.

use std::collections::HashSet;

use preview_tables::baseline::Yps09Summarizer;
use preview_tables::core::{
    DynamicProgrammingDiscovery, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig,
};
use preview_tables::datagen::{FreebaseDomain, SyntheticGenerator};
use preview_tables::eval::{precision_at_k, two_proportion_z_test};
use preview_tables::graph::triples;

const SCALE: f64 = 2e-4;

#[test]
fn synthetic_domain_schema_matches_table2_shape() {
    for domain in FreebaseDomain::ALL {
        let spec = domain.spec(SCALE);
        let graph = SyntheticGenerator::new(1).generate(&spec);
        let schema = graph.schema_graph();
        let stats = domain.paper_stats();
        assert_eq!(schema.type_count(), stats.entity_types, "{}", domain.name());
        assert_eq!(
            schema.relationship_type_count(),
            stats.relationship_types,
            "{}",
            domain.name()
        );
    }
}

#[test]
fn gold_standard_types_rank_high_under_coverage_scoring() {
    let spec = FreebaseDomain::Film.spec(SCALE);
    let graph = SyntheticGenerator::new(1).generate(&spec);
    let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
    let schema = scored.schema();
    let gold: HashSet<_> = FreebaseDomain::Film
        .gold_standard()
        .unwrap()
        .key_attributes()
        .iter()
        .filter_map(|name| schema.type_by_name(name))
        .collect();
    let ranked = scored.ranked_key_attributes();
    let p10 = precision_at_k(&ranked, &gold, 10);
    assert!(p10 >= 0.4, "P@10 = {p10}");
}

#[test]
fn previews_can_be_discovered_on_every_synthetic_domain() {
    for domain in FreebaseDomain::ALL {
        let spec = domain.spec(SCALE);
        let graph = SyntheticGenerator::new(3).generate(&spec);
        let scored = ScoredSchema::build(&graph, &ScoringConfig::coverage()).unwrap();
        let k = 3.min(scored.eligible_types().len());
        let space = PreviewSpace::concise(k, k + 5).unwrap();
        let preview = DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap_or_else(|| panic!("{}: no preview found", domain.name()));
        assert_eq!(preview.tables().len(), k, "{}", domain.name());
        assert!(
            space.contains(&preview, scored.distances()),
            "{}",
            domain.name()
        );
    }
}

#[test]
fn yps09_baseline_runs_on_synthetic_domains() {
    let spec = FreebaseDomain::People.spec(SCALE);
    let graph = SyntheticGenerator::new(5).generate(&spec);
    let schema = graph.schema_graph();
    let summary = Yps09Summarizer::new().summarize(&graph, schema, 6).unwrap();
    assert_eq!(summary.centers.len(), 6);
    assert_eq!(summary.ranked.len(), schema.type_count());
    // The importance distribution is normalised.
    let total: f64 = summary.importance.iter().sum();
    assert!((total - 1.0).abs() < 1e-6);
}

#[test]
fn triple_roundtrip_preserves_discovered_previews() {
    // Serialise a generated graph to the triple format, parse it back, and
    // confirm the optimal preview score is unchanged.
    let spec = FreebaseDomain::Basketball.spec(SCALE);
    let graph = SyntheticGenerator::new(11).generate(&spec);
    let text = triples::to_string(&graph);
    let reparsed = triples::parse_str(&text).unwrap();
    assert_eq!(graph.entity_count(), reparsed.entity_count());
    assert_eq!(graph.edge_count(), reparsed.edge_count());

    let space = PreviewSpace::concise(2, 5).unwrap();
    let score_of = |g: &preview_tables::graph::EntityGraph| -> f64 {
        let scored = ScoredSchema::build(g, &ScoringConfig::coverage()).unwrap();
        let preview = DynamicProgrammingDiscovery::new()
            .discover(&scored, &space)
            .unwrap()
            .unwrap();
        scored.preview_score(&preview)
    };
    assert!((score_of(&graph) - score_of(&reparsed)).abs() < 1e-9);
}

#[test]
fn user_study_statistics_pipeline() {
    use preview_tables::datagen::userstudy::{default_profiles, simulate, Approach, StudyConfig};
    let outcome = simulate(&default_profiles(), &StudyConfig::default());
    let get = |ap: Approach| {
        outcome
            .by_approach
            .iter()
            .find(|a| a.approach == ap)
            .expect("approach simulated")
    };
    // The z-test machinery accepts the simulated counts.
    let tight = get(Approach::Tight);
    let graph = get(Approach::Graph);
    let test = two_proportion_z_test(
        tight.correct,
        tight.responses,
        graph.correct,
        graph.responses,
    );
    assert!(test.is_some());
}
