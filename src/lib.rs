//! Facade crate for the *preview-tables* workspace.
//!
//! This crate re-exports the public API of every workspace member so that a
//! downstream user can depend on `preview-tables` alone:
//!
//! * [`graph`] — the entity-graph substrate (typed directed multigraph in a
//!   compact CSR columnar layout with zero-allocation neighbor lookup,
//!   memoized schema-graph derivation, triple ingestion, distances,
//!   statistics, and the `GraphDelta` batched-update subsystem whose CSR
//!   splice is byte-identical to a from-scratch rebuild),
//! * [`core`] — the paper's contribution: preview model, scoring measures and
//!   the brute-force / dynamic-programming / Apriori discovery algorithms,
//!   parallelized over a deterministic fork-join pool (`core::par`) whose
//!   outputs are byte-identical to the sequential path at any thread count,
//!   plus a best-first branch-and-bound engine with admissible bounds and an
//!   anytime mode (`core::BestFirstDiscovery`),
//! * [`baseline`] — the YPS09 relational-database-summarisation baseline
//!   adapted to entity graphs,
//! * [`datagen`] — synthetic Freebase-like domain generation, gold standards
//!   and the simulated crowdsourcing / user study used in the evaluation,
//! * [`eval`] — ranking metrics, correlation, hypothesis testing and
//!   descriptive statistics used to regenerate the paper's tables and figures,
//! * [`service`] — the concurrent, cached preview-serving engine (graph
//!   registry, worker pool, sharded LRU result cache, latency statistics);
//!   see its crate docs for the register → serve → stats quick-start.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/preview_service.rs` for the serving layer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use baseline;
pub use datagen;
pub use entity_graph as graph;
pub use eval;
pub use preview_core as core;
pub use preview_service as service;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use baseline::Yps09Summarizer;
    pub use datagen::{DomainSpec, FreebaseDomain, SyntheticGenerator};
    pub use entity_graph::{
        Direction, EntityGraph, EntityGraphBuilder, EntityId, GraphDelta, RelTypeId, SchemaGraph,
        TypeId,
    };
    pub use preview_core::{
        AnytimeBudget, AnytimeOutcome, AprioriDiscovery, BestFirstDiscovery, BruteForceDiscovery,
        DistanceConstraint, DynamicProgrammingDiscovery, FjPool, KeyScoring, NonKeyScoring,
        Preview, PreviewDiscovery, PreviewSpace, ScoredSchema, ScoringConfig, SizeConstraint,
    };
    pub use preview_service::{
        Algorithm, GraphRegistry, PreviewRequest, PreviewResponse, PreviewService, ServiceConfig,
    };
}
