#!/usr/bin/env bash
# CI gate for the preview-tables workspace.
#
# Runs the formatting and lint gates, then the tier-1 verify
# (`cargo build --release && cargo test -q`), then checks that the
# Criterion benches still compile. Fails on the first broken step.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> RUSTDOCFLAGS=-D warnings cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> preview-lint --check (emits LINT_REPORT.json)"
# Workspace invariant lint: determinism, concurrency, and policy rules
# over every crate. Fails on any unsuppressed finding; the JSON report
# carries per-rule counts plus the full suppression inventory.
cargo run --release -p preview-lint -- --check --out LINT_REPORT.json

echo "==> graph-bench smoke workload (emits BENCH_graph.json)"
cargo run --release -p bench --bin graph-bench -- \
    --out BENCH_graph.json --check

echo "==> preview-serve smoke workload (emits BENCH_service.json)"
cargo run --release -p bench --bin preview-serve -- \
    --requests 1000 --scale 5e-5 --out BENCH_service.json --check

echo "==> obs-bench smoke workload (emits BENCH_obs.json)"
# Observability overhead gate: the disabled recorder must cost < 1% on the
# serving path and full span recording — including the trace-tree pipeline,
# exercised via head sampling — < 5% (best paired round wins). The exported
# ObsSnapshot JSON must parse and enumerate every stage and counter with
# exact request counts. A tail-sampling scenario then injects one slow and
# one slow+panicking request and asserts: both trace trees retained with
# correct parent links, the slow tree's stage spans summing to its root,
# the latency histogram's top bucket carrying the slow trace id as its
# exemplar, the SLO burn rate flipping 0 -> positive, a single joined
# "slow+panic" dump, and the Prometheus text export re-parsing numerically
# equal to the snapshot.
cargo run --release -p bench --bin obs-bench -- \
    --out BENCH_obs.json --check

echo "==> parallel-bench smoke workload (emits BENCH_parallel.json)"
# Sequential vs 4-thread discovery, bitwise-identical outputs enforced.
# Speedup floors are host-aware (full 1.5x discovery floor with >= 4 cores,
# bounded-overhead floor on starved hosts); see the binary's docs.
cargo run --release -p bench --bin parallel-bench -- \
    --threads 4 --out BENCH_parallel.json --check

echo "==> anytime-bench smoke workload (emits BENCH_anytime.json)"
# Best-first branch-and-bound vs brute-force enumeration. Bitwise identity
# on the exact path is enforced on every space; the pruning gate requires
# visiting <= 25% of the subset lattice and a >= 1.5x wall-clock speedup
# (re-measured on a miss), and the anytime quality-vs-budget curve must be
# monotone and converge to the exact optimum.
cargo run --release -p bench --bin anytime-bench -- \
    --out BENCH_anytime.json --check

echo "==> update-bench smoke workload (emits BENCH_updates.json)"
# Delta splice + incremental rescore vs full rebuild + full rescore on a
# Zipf-skewed update stream. Byte-identity of the spliced graph and bitwise
# identity of the rescored schema are enforced on every measurement; the
# small-delta speedup floor (>= 3x) is re-measured on a miss before failing.
# A serving-layer phase verifies version-aware cache retention bitwise.
cargo run --release -p bench --bin update-bench -- \
    --out BENCH_updates.json --check

echo "==> scale-bench smoke tier (emits nothing; 10x scale, identity enforced)"
# Sharded build + entropy + registry publish at 10x the smoke scale.
# Bitwise identity (sharded vs unsharded entropy; published version vs
# from-scratch reshard) is always enforced. The full 100x/1000x sweep that
# produces the committed BENCH_scale.json is invoked manually:
#   cargo run --release -p bench --bin scale-bench -- \
#       --factors 10,100,1000 --out BENCH_scale.json --check
cargo run --release -p bench --bin scale-bench -- \
    --factors 10 --check

echo "CI green."
